// Coordinator dispatch benchmarks: the per-point cost of the sweep
// service's queue -> worker -> settle path, with fleet tracing off and on.
//
//   - BenchmarkDispatch is the tracing-OFF path: it must stay
//     allocation-identical to the pre-tracing coordinator (the committed
//     BENCH_dispatch.json baseline); TestBenchCompare enforces that.
//
//   - BenchmarkDispatchTraced attaches the fleet span log and scheduler
//     metrics; the delta is the price of -fleet-spans, not of the default.
//
//     go test -run='^$' -bench=Dispatch -benchmem .
package flexsim_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"flexsim/internal/api/specv1"
	"flexsim/internal/obs"
	"flexsim/internal/obs/fleettrace"
	"flexsim/internal/runner"
	"flexsim/internal/sim"
	"flexsim/internal/stats"
	"flexsim/internal/sweepsvc"
)

// benchDispatch pushes b.N distinct points through one coordinator with a
// single in-process worker and a stub executor, so the measured cost is
// scheduling, settlement and store persistence — not simulation.
func benchDispatch(b *testing.B, traced bool) {
	cache, err := runner.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	cfg := sweepsvc.Config{
		Cache:        cache,
		LocalWorkers: 1,
		Run: func(_ context.Context, c sim.Config) (*stats.Result, error) {
			return &stats.Result{Label: c.Label, Load: c.Load, Seed: c.Seed}, nil
		},
	}
	if traced {
		cfg.Trace = fleettrace.NewLog(nil) // in-memory span log
		cfg.Metrics = obs.NewFleetMetrics()
	}
	s, err := sweepsvc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	base := sim.Quick()
	base.Label = "dispatch"
	loads := make([]float64, b.N)
	for i := range loads {
		loads[i] = float64(i+1) * 1e-9 // distinct loads: no dedupe, b.N executions
	}
	spec := specv1.LoadSpec("dispatch", base, loads)

	b.ReportAllocs()
	b.ResetTimer()
	st, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	ch, cancel, err := s.Subscribe(st.ID)
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()
	for ev := range ch {
		if ev.Type == "done" {
			if ev.Stat.Done != b.N {
				b.Fatalf("dispatch sweep: %+v", ev.Stat)
			}
			return
		}
	}
	final, err := s.Status(st.ID)
	if err != nil || final.State != specv1.SweepDone {
		b.Fatalf("dispatch sweep did not settle: %+v (%v)", final, err)
	}
}

// BenchmarkDispatch: the tracing-off dispatch path (the default).
func BenchmarkDispatch(b *testing.B) { benchDispatch(b, false) }

// BenchmarkDispatchTraced: span log + scheduler metrics attached. The delta
// against BenchmarkDispatch is the price of -fleet-spans.
func BenchmarkDispatchTraced(b *testing.B) { benchDispatch(b, true) }

// dispatchBenchFile is the BENCH_dispatch.json envelope: the committed
// tracing-off baseline the bench-compare gate holds the coordinator to.
type dispatchBenchFile struct {
	Benchmark    string  `json:"benchmark"`
	GoVersion    string  `json:"go_version"`
	GOOS         string  `json:"goos"`
	GOARCH       string  `json:"goarch"`
	NumCPU       int     `json:"num_cpu"`
	OffNsPerOp   float64 `json:"off_ns_per_op"`
	OffAllocs    int64   `json:"off_allocs_per_op"`
	OnNsPerOp    float64 `json:"on_ns_per_op"`
	OnAllocs     int64   `json:"on_allocs_per_op"`
	OverheadFrac float64 `json:"overhead_frac"`
}

// TestEmitDispatchBench measures the tracing-off and tracing-on dispatch
// paths and writes BENCH_dispatch.json to $FLEXSIM_BENCH_DISPATCH_OUT;
// without the variable it is a no-op.
func TestEmitDispatchBench(t *testing.T) {
	out := os.Getenv("FLEXSIM_BENCH_DISPATCH_OUT")
	if out == "" {
		t.Skip("set FLEXSIM_BENCH_DISPATCH_OUT to write BENCH_dispatch.json")
	}
	off := testing.Benchmark(func(b *testing.B) { benchDispatch(b, false) })
	on := testing.Benchmark(func(b *testing.B) { benchDispatch(b, true) })
	offNs, onNs := float64(off.NsPerOp()), float64(on.NsPerOp())
	file := dispatchBenchFile{
		Benchmark:  "BenchmarkDispatch",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		OffNsPerOp: offNs, OffAllocs: off.AllocsPerOp(),
		OnNsPerOp: onNs, OnAllocs: on.AllocsPerOp(),
		OverheadFrac: (onNs - offNs) / offNs,
	}
	b, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestBenchCompareDispatch is the dispatch half of the CI bench-compare
// gate (FLEXSIM_BENCH_COMPARE=1): the tracing-off dispatch path must stay
// allocation-identical to the committed BENCH_dispatch.json baseline.
// Dispatch wall-clock is dominated by store I/O and too noisy to gate; it
// is logged for the record on every machine.
func TestBenchCompareDispatch(t *testing.T) {
	if os.Getenv("FLEXSIM_BENCH_COMPARE") == "" {
		t.Skip("set FLEXSIM_BENCH_COMPARE=1 to run the bench-compare gate")
	}
	path := os.Getenv("FLEXSIM_BENCH_DISPATCH_BASELINE")
	if path == "" {
		path = "BENCH_dispatch.json"
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("dispatch bench baseline: %v", err)
	}
	var base dispatchBenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("dispatch bench baseline %s: %v", path, err)
	}
	res := testing.Benchmark(func(b *testing.B) { benchDispatch(b, false) })
	t.Logf("tracing-off Dispatch: %d ns/op, %d allocs/op (baseline %.0f ns, %d allocs from %s/%d-cpu)",
		res.NsPerOp(), res.AllocsPerOp(), base.OffNsPerOp, base.OffAllocs, base.GOARCH, base.NumCPU)
	if res.AllocsPerOp() > base.OffAllocs {
		t.Errorf("dispatch allocs/op grew: %d > baseline %d — the tracing-off path is no longer allocation-identical",
			res.AllocsPerOp(), base.OffAllocs)
	}
}
