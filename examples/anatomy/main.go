// Anatomy: reconstructs the paper's Figures 1-4 as channel wait-for graphs
// and runs true deadlock detection on each, demonstrating the full taxonomy:
// single-cycle deadlocks (static and adaptivity-exhausted), multi-cycle
// deadlocks, cyclic non-deadlocks, and dependent messages. Pass -dot to also
// emit Graphviz sources.
package main

import (
	"flag"
	"fmt"

	"flexsim/internal/cwg"
)

func main() {
	dot := flag.Bool("dot", false, "also print Graphviz DOT for each scenario")
	flag.Parse()

	scenarios := []struct {
		name string
		blur string
		msgs []cwg.Msg
	}{
		{
			name: "Figure 1: single-cycle deadlock (DOR, 1 VC)",
			blur: "three messages hold chains around a ring and wait on each other;\ntwo more have acquired all they need and drain harmlessly",
			msgs: cwg.PaperFig1(),
		},
		{
			name: "Figure 2: single-cycle deadlock (minimal adaptive, 1 VC)",
			blur: "four messages with exhausted adaptivity wait in a ring;\nmessage 5 is dependent: blocked on the knot but not part of it",
			msgs: cwg.PaperFig2(),
		},
		{
			name: "Figure 3: multi-cycle deadlock (minimal adaptive, 2 VCs)",
			blur: "eight messages, sixteen VCs, overlapping cycles woven into one knot",
			msgs: cwg.PaperFig3(),
		},
		{
			name: "Figure 4: cyclic non-deadlock (minimal adaptive, 2 VCs)",
			blur: "same as Figure 3 but message 3 can proceed: cycles remain,\nyet no knot exists - cycles are necessary but not sufficient",
			msgs: cwg.PaperFig4(),
		},
	}

	for _, s := range scenarios {
		fmt.Printf("=== %s ===\n%s\n", s.name, s.blur)
		g := cwg.Build(s.msgs)
		an := g.Analyze(cwg.Options{CountKnotCycles: true, CountTotalCycles: true})
		fmt.Printf("graph: %d VCs, %d arcs; %d blocked messages; %d resource dependency cycles\n",
			g.NumVertices(), g.NumEdges(), an.BlockedMessages, an.TotalCycles)
		if len(an.Deadlocks) == 0 {
			fmt.Println("verdict: NO deadlock (no knot in the CWG)")
		}
		for _, d := range an.Deadlocks {
			fmt.Printf("verdict: DEADLOCK (%s)\n", d.Kind)
			fmt.Printf("  knot:               %d VCs %v\n", len(d.KnotVCs), d.KnotVCs)
			fmt.Printf("  deadlock set:       %d messages %v\n", len(d.DeadlockSet), d.DeadlockSet)
			fmt.Printf("  resource set:       %d VCs %v\n", len(d.ResourceSet), d.ResourceSet)
			fmt.Printf("  knot cycle density: %d cycle(s)\n", d.KnotCycles)
			fmt.Printf("  dependent messages: %v (must NOT be chosen as recovery victims)\n", d.Dependent)
		}
		if *dot {
			fmt.Println(g.DOT(nil))
		}
		fmt.Println()
	}
}
