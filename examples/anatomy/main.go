// Anatomy: reconstructs the paper's Figures 1-4 as channel wait-for graphs
// and runs true deadlock detection on each, demonstrating the full taxonomy:
// single-cycle deadlocks (static and adaptivity-exhausted), multi-cycle
// deadlocks, cyclic non-deadlocks, and dependent messages. Pass -dot to also
// emit Graphviz sources, or -spans-out to additionally run a small live
// deadlocking simulation and export its Perfetto trace (message lifecycle
// spans + detector passes, loadable in ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"os"

	"flexsim/internal/cwg"
	"flexsim/internal/sim"
	"flexsim/internal/trace"
)

func main() {
	dot := flag.Bool("dot", false, "also print Graphviz DOT for each scenario")
	spansOut := flag.String("spans-out", "", "run a live deadlocking sim and write its Perfetto trace here")
	flag.Parse()

	scenarios := []struct {
		name string
		blur string
		msgs []cwg.Msg
	}{
		{
			name: "Figure 1: single-cycle deadlock (DOR, 1 VC)",
			blur: "three messages hold chains around a ring and wait on each other;\ntwo more have acquired all they need and drain harmlessly",
			msgs: cwg.PaperFig1(),
		},
		{
			name: "Figure 2: single-cycle deadlock (minimal adaptive, 1 VC)",
			blur: "four messages with exhausted adaptivity wait in a ring;\nmessage 5 is dependent: blocked on the knot but not part of it",
			msgs: cwg.PaperFig2(),
		},
		{
			name: "Figure 3: multi-cycle deadlock (minimal adaptive, 2 VCs)",
			blur: "eight messages, sixteen VCs, overlapping cycles woven into one knot",
			msgs: cwg.PaperFig3(),
		},
		{
			name: "Figure 4: cyclic non-deadlock (minimal adaptive, 2 VCs)",
			blur: "same as Figure 3 but message 3 can proceed: cycles remain,\nyet no knot exists - cycles are necessary but not sufficient",
			msgs: cwg.PaperFig4(),
		},
	}

	for _, s := range scenarios {
		fmt.Printf("=== %s ===\n%s\n", s.name, s.blur)
		g := cwg.Build(s.msgs)
		an := g.Analyze(cwg.Options{CountKnotCycles: true, CountTotalCycles: true})
		fmt.Printf("graph: %d VCs, %d arcs; %d blocked messages; %d resource dependency cycles\n",
			g.NumVertices(), g.NumEdges(), an.BlockedMessages, an.TotalCycles)
		if len(an.Deadlocks) == 0 {
			fmt.Println("verdict: NO deadlock (no knot in the CWG)")
		}
		for _, d := range an.Deadlocks {
			fmt.Printf("verdict: DEADLOCK (%s)\n", d.Kind)
			fmt.Printf("  knot:               %d VCs %v\n", len(d.KnotVCs), d.KnotVCs)
			fmt.Printf("  deadlock set:       %d messages %v\n", len(d.DeadlockSet), d.DeadlockSet)
			fmt.Printf("  resource set:       %d VCs %v\n", len(d.ResourceSet), d.ResourceSet)
			fmt.Printf("  knot cycle density: %d cycle(s)\n", d.KnotCycles)
			fmt.Printf("  dependent messages: %v (must NOT be chosen as recovery victims)\n", d.Dependent)
		}
		if *dot {
			fmt.Println(g.DOT(nil))
		}
		fmt.Println()
	}

	if *spansOut != "" {
		if err := writeSpans(*spansOut); err != nil {
			fmt.Fprintln(os.Stderr, "anatomy:", err)
			os.Exit(1)
		}
	}
}

// writeSpans runs the deterministic saturating quick configuration — the
// same shape the figures dissect statically, but live — and exports the
// whole run as a Chrome trace-event file: one track per message (queued /
// active / blocked / recovery-drain spans) plus the detector-pass track.
func writeSpans(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	spans := trace.NewPerfetto(f)

	c := sim.Quick()
	c.Load = 1.0 // past saturation: deadlocks form, victims drain
	c.Spans = spans
	res, err := sim.Run(c)
	if err != nil {
		f.Close()
		return err
	}
	werr := spans.Close()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("=== Live run ===\nwrote Perfetto trace to %s (%d deadlocks over %d cycles; load in ui.perfetto.dev)\n",
		path, res.Deadlocks, res.Cycles)
	return nil
}
