// Quickstart: run one simulation with true deadlock detection and print the
// paper's headline metric — normalized deadlocks — for dimension-order
// routing on a small torus, then sweep the offered load to see deadlock
// frequency grow through saturation.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"flexsim/internal/core"
)

func main() {
	// One run: 8-ary 2-cube, DOR, one virtual channel — the paper's most
	// deadlock-prone bidirectional configuration.
	cfg := core.QuickConfig()
	cfg.Routing = "dor"
	cfg.VCs = 1
	cfg.Load = 0.8

	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Printf("single run: %s\n", res)
	fmt.Printf("  %d deadlocks over %d delivered messages -> %.4f normalized deadlocks\n",
		res.Deadlocks, res.Delivered, res.NormalizedDeadlocks())
	fmt.Printf("  mean deadlock set %.1f messages, mean resource set %.1f VCs, all %s\n\n",
		res.MeanDeadlockSet(), res.MeanResourceSet(), kind(res))

	// Load sweep, in parallel: deadlocks are rare below saturation and
	// frequent beyond it. The sweep API is context-first — Ctrl-C stops
	// in-flight runs within one detector period instead of killing the
	// process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	loads := core.Loads(0.2, 1.2, 0.2)
	points := core.LoadSweep(ctx, cfg, loads)
	if err := core.FirstError(points); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	table := core.Table{
		Title:   "DOR, 1 VC: deadlocks vs offered load",
		Headers: []string{"load", "normalized_deadlocks", "throughput", "saturated"},
	}
	for _, p := range points {
		table.AddRow(p.Load, p.Result.NormalizedDeadlocks(), p.Result.Throughput(), p.Result.Saturated)
	}
	if err := table.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Printf("saturation begins at load %.2g\n", core.SaturationLoad(points))
}

func kind(res *core.Result) string {
	if res.MultiCycle == 0 {
		return "single-cycle"
	}
	return "mixed single/multi-cycle"
}
