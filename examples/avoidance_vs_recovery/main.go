// Avoidance vs recovery: the paper's motivating question. Compares, at the
// same offered load on the same torus:
//
//   - unrestricted routing with deadlock *recovery* (DOR/TFAR with free VC
//     use, true deadlock detection, Disha-style absorption), versus
//   - deadlock *avoidance* baselines (dateline DOR, Duato-protocol adaptive
//     routing) that restrict VC use so that no knot can ever form.
//
// The paper's conclusion — recovery is viable because a few unrestricted
// VCs already make deadlock highly improbable — shows up directly in the
// table: TFAR with 2 unrestricted VCs delivers avoidance-level throughput
// with zero observed deadlocks.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"flexsim/internal/core"
)

func main() {
	type variant struct {
		label   string
		routing string
		vcs     int
	}
	variants := []variant{
		{"recovery: DOR, 1 VC (unrestricted)", "dor", 1},
		{"recovery: DOR, 2 VCs (unrestricted)", "dor", 2},
		{"recovery: DOR, 3 VCs (unrestricted)", "dor", 3},
		{"recovery: TFAR, 1 VC (unrestricted)", "tfar", 1},
		{"recovery: TFAR, 2 VCs (unrestricted)", "tfar", 2},
		{"avoidance: dateline DOR, 2 VCs", "dateline-dor", 2},
		{"avoidance: Duato FAR, 3 VCs", "duato-far", 3},
	}

	// Context-first execution: Ctrl-C cancels the remaining runs cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, load := range []float64{0.5, 0.9} {
		table := core.Table{
			Title: fmt.Sprintf("avoidance vs recovery at load %.1f (8-ary 2-cube, 32-flit messages)", load),
			Headers: []string{"variant", "deadlocks", "ndl", "throughput",
				"latency", "pct_blocked"},
		}
		var cfgs []core.Config
		for _, v := range variants {
			cfg := core.QuickConfig()
			cfg.Routing = v.routing
			cfg.VCs = v.vcs
			cfg.Load = load
			cfg.Label = v.label
			cfgs = append(cfgs, cfg)
		}
		points := core.RunAll(ctx, cfgs)
		if err := core.FirstError(points); err != nil {
			fmt.Fprintln(os.Stderr, "avoidance_vs_recovery:", err)
			os.Exit(1)
		}
		for i, p := range points {
			r := p.Result
			table.AddRow(variants[i].label, r.Deadlocks, r.NormalizedDeadlocks(),
				r.Throughput(), r.MeanLatency(), 100*r.BlockedFraction())
		}
		table.AddNote("avoidance rows must show exactly 0 deadlocks by construction;")
		table.AddNote("recovery rows with >=3 VCs (DOR) / >=2 VCs (TFAR) show 0 empirically - the paper's key finding")
		if err := table.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "avoidance_vs_recovery:", err)
			os.Exit(1)
		}
	}
}
