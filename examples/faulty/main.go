// Faulty: deadlock probability vs failed-link fraction. Sweeps the
// steady-state fraction of failed links — each fraction realized as a
// deterministic, seed-generated link-failure/repair schedule — and
// measures, over several replicates, how often the degraded network
// deadlocks, how much traffic the faults kill, and what unroutability
// costs. The healthy row (fraction 0) is the baseline: adaptive routing's
// path diversity keeps it out of knots at this load; failures consume that
// diversity, and the deadlock probability climbs with the failed fraction.
package main

import (
	"context"
	"fmt"
	"os"

	"flexsim/internal/core"
)

func main() {
	const (
		replicates = 5
		repair     = 500 // cycles a failed link stays down
		load       = 0.8
	)
	fractions := []float64{0, 0.02, 0.05, 0.10, 0.20}

	var cfgs []core.Config
	for _, f := range fractions {
		for r := 0; r < replicates; r++ {
			cfg := core.QuickConfig()
			cfg.Routing = "tfar"
			cfg.VCs = 2
			cfg.Load = load
			cfg.Seed = uint64(r + 1)
			cfg.Label = fmt.Sprintf("f=%.2f r%d", f, r)
			if f > 0 {
				// Steady-state failed fraction f = repair/(mttf+repair).
				cfg.FaultLinkMTTF = int(float64(repair) * (1 - f) / f)
				cfg.FaultRepair = repair
				cfg.FaultSeed = uint64(1000 + r)
			}
			cfgs = append(cfgs, cfg)
		}
	}

	points := core.RunAll(context.Background(), cfgs)
	if err := core.FirstError(points); err != nil {
		fmt.Fprintln(os.Stderr, "faulty:", err)
		os.Exit(1)
	}

	table := core.Table{
		Title: fmt.Sprintf("deadlock probability vs failed-link fraction (TFAR/2VC, load %.2g, repair %d)",
			load, repair),
		Headers: []string{"failed_frac", "p_deadlock", "ndl", "killed_frac", "unroutable", "latency"},
	}
	for i, f := range fractions {
		var deadlocked int
		var ndl, killed, unroutable, latency float64
		for r := 0; r < replicates; r++ {
			res := points[i*replicates+r].Result
			if res.Deadlocks > 0 {
				deadlocked++
			}
			ndl += res.NormalizedDeadlocks()
			killed += res.KilledFraction()
			unroutable += float64(res.Unroutable)
			latency += res.MeanLatency()
		}
		n := float64(replicates)
		table.AddRow(f, float64(deadlocked)/n, ndl/n, killed/n, unroutable/n, latency/n)
	}
	table.AddNote("each fraction = %d replicates with independent seeds and generated fault schedules", replicates)
	table.AddNote("schedules are deterministic: same seeds reproduce this table byte-for-byte")
	if err := table.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faulty:", err)
		os.Exit(1)
	}
}
