// Hotspot: drives the network with non-uniform traffic (Sec. 3.6 of the
// paper) and inspects how deadlock frequency and structure respond. It runs
// hot-spot traffic at increasing hot fractions and contrasts a permutation
// pattern (bit-reversal) whose source/destination pairs cannot circularly
// overlap under DOR, reproducing the paper's observation that most
// non-uniform patterns behave within ~10% of uniform — except where the
// pattern removes the overlap deadlock needs.
package main

import (
	"context"
	"fmt"
	"os"

	"flexsim/internal/core"
)

func main() {
	base := core.QuickConfig()
	base.Routing = "dor"
	base.VCs = 1
	base.Load = 0.9

	table := core.Table{
		Title: "non-uniform traffic under DOR1 at load 0.9",
		Headers: []string{"pattern", "deadlocks", "ndl", "mean_dlset",
			"throughput", "pct_blocked"},
	}

	var cfgs []core.Config
	labels := []string{}
	add := func(label, pattern string, frac float64) {
		c := base
		c.Traffic = pattern
		c.HotspotFrac = frac
		c.Label = label
		cfgs = append(cfgs, c)
		labels = append(labels, label)
	}
	add("uniform", "uniform", 0)
	add("hotspot 5%", "hotspot", 0.05)
	add("hotspot 10%", "hotspot", 0.10)
	add("hotspot 20%", "hotspot", 0.20)
	add("transpose", "transpose", 0)
	add("bit-reversal", "bitrev", 0)
	add("perfect-shuffle", "shuffle", 0)
	add("tornado", "tornado", 0)

	points := core.RunAll(context.Background(), cfgs)
	if err := core.FirstError(points); err != nil {
		fmt.Fprintln(os.Stderr, "hotspot:", err)
		os.Exit(1)
	}
	for i, p := range points {
		r := p.Result
		table.AddRow(labels[i], r.Deadlocks, r.NormalizedDeadlocks(), r.MeanDeadlockSet(),
			r.Throughput(), 100*r.BlockedFraction())
	}
	table.AddNote("permutations that break circular overlap suppress DOR deadlocks; randomized patterns track uniform")
	if err := table.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hotspot:", err)
		os.Exit(1)
	}
}
