// Irregular: deadlock characterization on irregular switch networks (the
// paper's future-work topology, typical of networks of workstations).
// Builds random connected switch graphs of increasing link density and
// contrasts unrestricted minimal adaptive routing with recovery against
// Autonet-style up*/down* avoidance routing — then prints the first
// adaptive-routing deadlock's anatomy.
package main

import (
	"context"
	"fmt"
	"os"

	"flexsim/internal/core"
	"flexsim/internal/cwg"
	"flexsim/internal/message"
	"flexsim/internal/sim"
)

func main() {
	table := core.Table{
		Title: "irregular 32-switch networks at load 1.0",
		Headers: []string{"routing", "extra_links", "deadlocks", "ndl",
			"throughput", "latency"},
	}
	var cfgs []core.Config
	type meta struct {
		alg   string
		extra int
	}
	var metas []meta
	for _, alg := range []string{"min-adaptive", "updown"} {
		for _, extra := range []int{6, 16, 32} {
			cfg := core.QuickConfig()
			cfg.IrregularNodes = 32
			cfg.IrregularLinks = extra
			cfg.Routing = alg
			cfg.VCs = 1
			cfg.Load = 1.0
			cfgs = append(cfgs, cfg)
			metas = append(metas, meta{alg, extra})
		}
	}
	points := core.RunAll(context.Background(), cfgs)
	if err := core.FirstError(points); err != nil {
		fmt.Fprintln(os.Stderr, "irregular:", err)
		os.Exit(1)
	}
	for i, p := range points {
		r := p.Result
		table.AddRow(metas[i].alg, metas[i].extra, r.Deadlocks, r.NormalizedDeadlocks(),
			r.Throughput(), r.MeanLatency())
	}
	table.AddNote("up*/down* orientation makes knots impossible; unrestricted routing relies on detection + recovery")
	if err := table.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "irregular:", err)
		os.Exit(1)
	}

	// Hunt down one real deadlock and dissect it.
	cfg := core.QuickConfig()
	cfg.IrregularNodes = 32
	cfg.IrregularLinks = 8
	cfg.Routing = "min-adaptive"
	cfg.VCs = 1
	cfg.Load = 1.2
	cfg.Recover = false
	cfg.WarmupCycles = 0
	for seed := uint64(1); seed <= 20; seed++ {
		cfg.Seed = seed
		r, err := sim.NewRunner(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irregular:", err)
			os.Exit(1)
		}
		for cycle := 0; cycle < 20000; cycle++ {
			r.StepCycle()
			if r.Net.Now()%50 != 0 {
				continue
			}
			g := cwg.Build(r.Detector.Snapshot())
			an := g.Analyze(cwg.Options{CountKnotCycles: true})
			if len(an.Deadlocks) == 0 {
				continue
			}
			d := an.Deadlocks[0]
			fmt.Printf("\nfirst deadlock (seed %d, cycle %d): %s\n", seed, r.Net.Now(), d.Kind)
			fmt.Printf("  deadlock set: %d messages %v\n", len(d.DeadlockSet), d.DeadlockSet)
			fmt.Printf("  resource set: %d VCs; knot: %d VCs; density %d; %d dependent\n",
				len(d.ResourceSet), len(d.KnotVCs), d.KnotCycles, len(d.Dependent))
			fmt.Println("  knot channels:")
			for _, vc := range d.KnotVCs {
				owner := "?"
				if id, ok := g.OwnerOf(vc); ok {
					owner = fmt.Sprintf("msg %d", id)
				}
				fmt.Printf("    %-22s held by %s\n", r.Net.VCString(message.VC(vc)), owner)
			}
			return
		}
	}
	fmt.Println("\nno deadlock observed on these seeds (try more seeds or fewer links)")
}
