module flexsim

go 1.22
