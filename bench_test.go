// Benchmarks regenerating every table and figure of the paper's evaluation
// (scaled to benchmark-friendly sizes: 8-ary 2-cube, short windows; run
// cmd/charsweep without -quick for full-fidelity sweeps), plus
// micro-benchmarks and the ablations called out in DESIGN.md.
//
//	go test -bench=. -benchmem
package flexsim_test

import (
	"context"
	"fmt"
	"testing"

	"flexsim/internal/core"
	"flexsim/internal/cwg"
	"flexsim/internal/detect"
	"flexsim/internal/experiments"
	"flexsim/internal/network"
	"flexsim/internal/obs"
	"flexsim/internal/rng"
	"flexsim/internal/routing"
	"flexsim/internal/sim"
	"flexsim/internal/topology"
)

// benchOpts shrinks experiment sweeps so one bench iteration stays ~O(1s).
func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Loads: []float64{0.4, 1.0}, Seed: 7}
}

func benchExperiment(b *testing.B, id string) {
	f, err := experiments.ByName(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := f(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// --- One benchmark per paper table/figure -----------------------------------

// BenchmarkFig5a / Fig5b: bidirectionality study (normalized deadlocks and
// deadlock set sizes vs load, DOR, 1 VC, uni vs bi torus).
func BenchmarkFig5a(b *testing.B) { benchFig5Panel(b, false) }
func BenchmarkFig5b(b *testing.B) { benchFig5Panel(b, true) }

func benchFig5Panel(b *testing.B, setSizes bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		idx := 0
		if setSizes {
			idx = 1
		}
		if len(tables[idx].Rows) == 0 {
			b.Fatal("empty panel")
		}
	}
}

// BenchmarkFig6a / Fig6b: adaptivity study (deadlocks+cycles, set sizes).
func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7a / Fig7b: virtual channel study (1-4 VCs; cycle census).
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8a / Fig8b: buffer depth study (wormhole through VCT).
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkNodeDegree: Sec. 3.5 (2-D vs higher-degree torus).
func BenchmarkNodeDegree(b *testing.B) { benchExperiment(b, "degree") }

// BenchmarkTraffic: Sec. 3.6 (non-uniform traffic patterns).
func BenchmarkTraffic(b *testing.B) { benchExperiment(b, "traffic") }

// BenchmarkIrregular: the future-work irregular-network study (up*/down*
// vs unrestricted minimal adaptive on random switch graphs).
func BenchmarkIrregular(b *testing.B) { benchExperiment(b, "irregular") }

// --- Single-run benchmarks at the paper's default scale ---------------------

// BenchmarkSimCycle measures raw simulation speed: cycles/op on a saturated
// 16-ary 2-cube with TFAR (the paper's default network), detector off.
func BenchmarkSimCycle(b *testing.B) {
	cfg := sim.Default()
	cfg.Load = 1.0
	cfg.DetectEvery = 1 << 30
	cfg.WarmupCycles = 0
	r, err := sim.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ { // reach saturation occupancy
		r.StepCycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StepCycle()
	}
}

// BenchmarkSimCycleObsOff is BenchmarkSimCycle with the observability
// fields explicitly zero — the nil-guarded hooks must not change the hot
// path. Compare its ns/op against BenchmarkSimCycle (budget: <= 2% apart)
// and require 0 allocs/op.
func BenchmarkSimCycleObsOff(b *testing.B) {
	cfg := sim.Default()
	cfg.Load = 1.0
	cfg.DetectEvery = 1 << 30
	cfg.WarmupCycles = 0
	cfg.MetricsEvery = 0
	cfg.MetricsSink = nil
	cfg.MetricsLive = nil
	cfg.Incidents = nil
	cfg.Tracer = nil
	r, err := sim.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ { // reach saturation occupancy
		r.StepCycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StepCycle()
	}
}

// BenchmarkSimCycleObsOn measures the same loop with interval metrics and a
// live view enabled at the default cadence — the cost of observability when
// it is on.
func BenchmarkSimCycleObsOn(b *testing.B) {
	cfg := sim.Default()
	cfg.Load = 1.0
	cfg.DetectEvery = 1 << 30
	cfg.WarmupCycles = 0
	cfg.MetricsEvery = obs.DefaultEvery
	cfg.MetricsLive = &obs.Live{}
	r, err := sim.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		r.StepCycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StepCycle()
	}
}

// BenchmarkDetection measures one full true-deadlock-detection pass
// (snapshot + CWG build + Tarjan + classification) on a saturated 16-ary
// 2-cube.
func BenchmarkDetection(b *testing.B) {
	r := saturatedRunner(b, "tfar", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Detector.DetectNow()
	}
}

// BenchmarkDetectionWithCensus adds the Johnson cycle census to each pass.
func BenchmarkDetectionWithCensus(b *testing.B) {
	cfg := sim.Default()
	cfg.Load = 1.0
	cfg.WarmupCycles = 0
	cfg.CycleCensus = true
	cfg.MaxCycles = 100000
	cfg.MaxWork = 2000000
	r, err := sim.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		r.StepCycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Detector.DetectNow()
	}
}

func saturatedRunner(b *testing.B, alg string, vcs int) *sim.Runner {
	b.Helper()
	cfg := sim.Default()
	cfg.Routing = alg
	cfg.VCs = vcs
	cfg.Load = 1.0
	cfg.WarmupCycles = 0
	r, err := sim.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		r.StepCycle()
	}
	return r
}

// --- Ablations from DESIGN.md -----------------------------------------------

// BenchmarkKnotTarjanVsReach quantifies design decision 1: knot detection by
// Tarjan + condensation vs the naive per-vertex reachability definition, on
// a CWG captured from a saturated network.
func BenchmarkKnotTarjanVsReach(b *testing.B) {
	g := saturatedCWG(b)
	b.Run(fmt.Sprintf("tarjan/V=%d", g.NumVertices()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.FindKnots()
		}
	})
	b.Run(fmt.Sprintf("naive/V=%d", g.NumVertices()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.NaiveKnots()
		}
	})
}

func saturatedCWG(b *testing.B) *cwg.Graph {
	b.Helper()
	r := saturatedRunner(b, "tfar", 1)
	return cwg.Build(r.Detector.Snapshot())
}

// BenchmarkJohnsonCaps quantifies design decision 5: bounded cycle
// enumeration cost at different caps on a dense blocked-network CWG.
func BenchmarkJohnsonCaps(b *testing.B) {
	g := saturatedCWG(b)
	for _, maxCycles := range []int{100, 10000, 1000000} {
		b.Run(fmt.Sprintf("maxCycles=%d", maxCycles), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Analyze(cwg.Options{CountTotalCycles: true, MaxCycles: maxCycles, MaxWork: 1 << 22})
			}
		})
	}
}

// BenchmarkCWGBuild measures snapshot-to-graph construction alone.
func BenchmarkCWGBuild(b *testing.B) {
	r := saturatedRunner(b, "tfar", 1)
	snap := r.Detector.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := cwg.Build(snap)
		if g.NumVertices() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkBuild compares the two snapshot-to-graph construction paths on
// the same saturated snapshot: the legacy allocating cwg.Build against a
// pooled Builder whose arenas are reused across iterations. The pooled path
// is the one Detector uses in steady state.
func BenchmarkBuild(b *testing.B) {
	r := saturatedRunner(b, "tfar", 1)
	snap := r.Detector.Snapshot()
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := cwg.Build(snap)
			if g.NumVertices() == 0 {
				b.Fatal("empty graph")
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		bld := cwg.NewBuilder(r.Net.TotalVCs())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := bld.Build(snap)
			if g.NumVertices() == 0 {
				b.Fatal("empty graph")
			}
		}
	})
}

// BenchmarkDetectNow measures a full detection pass (snapshot + pooled build
// + Tarjan + classification) with the change gate defeated, so every
// iteration rebuilds and re-analyzes. Steady-state allocations should be
// zero once the detector's arenas have warmed up.
func BenchmarkDetectNow(b *testing.B) {
	r := saturatedRunner(b, "dateline-dor", 2)
	r.Detector.DetectNow() // warm the arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Detector.Invalidate()
		r.Detector.DetectNow()
	}
}

// BenchmarkDetectNowGated measures the gated fast path: the network has not
// changed since the last deadlock-free pass, so DetectNow returns the cached
// analysis. This must report 0 allocs/op.
func BenchmarkDetectNowGated(b *testing.B) {
	r := saturatedRunner(b, "dateline-dor", 2)
	r.Detector.DetectNow() // prime the gate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Detector.DetectNow()
	}
	b.StopTimer()
	if r.Detector.Stats.Gated == 0 {
		b.Fatal("gate never engaged; fast path not exercised")
	}
}

// BenchmarkVCTvsWormhole quantifies design decision 4: virtual cut-through
// as an emergent buffer-depth setting rather than a special-cased switch
// mode (per-run cost of depth 2 vs depth 32).
func BenchmarkVCTvsWormhole(b *testing.B) {
	for _, depth := range []int{2, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := sim.Quick()
			cfg.Routing = "tfar"
			cfg.BufferDepth = depth
			cfg.Load = 1.0
			cfg.WarmupCycles = 200
			cfg.MeasureCycles = 1000
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouting measures candidate generation for each algorithm on the
// topology class it is defined for.
func BenchmarkRouting(b *testing.B) {
	torus := topology.MustNew(16, 2, true)
	mesh := topology.MustNewMesh(16, 2)
	irr := topology.MustNewIrregular(256, 128, 1)
	for _, name := range routing.Names() {
		alg, err := routing.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		var topo topology.Network = torus
		switch name {
		case "negative-first", "west-first":
			topo = mesh
		case "updown":
			topo = irr
		}
		b.Run(name, func(b *testing.B) {
			req := routing.Request{Topo: topo, Node: 0, Dst: 137, VCs: 4, CurDim: 0, PrevCh: topology.None}
			var buf []routing.Candidate
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = alg.Candidates(&req, buf[:0])
			}
			if len(buf) == 0 {
				b.Fatal("no candidates")
			}
		})
	}
}

// BenchmarkNetworkStepScaling measures per-cycle cost across network sizes.
func BenchmarkNetworkStepScaling(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			topo := topology.MustNew(k, 2, true)
			n, err := network.New(network.Params{
				Topo: topo, VCs: 2, BufferDepth: 2, Routing: routing.TFAR{}, RecoveryDrainRate: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			prob := 0.5 * topo.CapacityPerNode() / 32
			inject := func() {
				for s := 0; s < topo.Nodes(); s++ {
					if r.Bernoulli(prob) {
						d := r.Intn(topo.Nodes())
						if d != s {
							n.Inject(s, d, 32)
						}
					}
				}
			}
			for i := 0; i < 500; i++ {
				inject()
				n.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inject()
				n.Step()
			}
		})
	}
}

// BenchmarkRecoveryPolicies compares victim-selection policies end to end.
func BenchmarkRecoveryPolicies(b *testing.B) {
	for _, pol := range []string{"oldest", "most", "fewest", "random"} {
		b.Run(pol, func(b *testing.B) {
			cfg := sim.Quick()
			cfg.Bidirectional = false
			cfg.Routing = "dor"
			cfg.Load = 1.0
			cfg.VictimPolicy = pol
			cfg.WarmupCycles = 200
			cfg.MeasureCycles = 1000
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Deadlocks == 0 {
					b.Fatal("no deadlocks to recover from")
				}
			}
		})
	}
}

// BenchmarkLoadSweepParallel measures the sweep harness itself.
func BenchmarkLoadSweepParallel(b *testing.B) {
	cfg := core.QuickConfig()
	cfg.K = 4
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 300
	loads := core.Loads(0.2, 1.0, 0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := core.LoadSweep(context.Background(), cfg, loads)
		if err := core.FirstError(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperScenarios measures analysis of the hand-built Figure 1-4
// graphs (detection latency floor).
func BenchmarkPaperScenarios(b *testing.B) {
	scenarios := map[string][]cwg.Msg{
		"fig1": cwg.PaperFig1(), "fig2": cwg.PaperFig2(),
		"fig3": cwg.PaperFig3(), "fig4": cwg.PaperFig4(),
	}
	for name, msgs := range scenarios {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := cwg.Build(msgs)
				g.Analyze(cwg.Options{CountKnotCycles: true, CountTotalCycles: true})
			}
		})
	}
}

// BenchmarkDetectorTickOverhead measures the steady-state cost the paper's
// 50-cycle detection period adds to simulation.
func BenchmarkDetectorTickOverhead(b *testing.B) {
	r := saturatedRunner(b, "dor", 1)
	d, err := detect.New(r.Net, detect.Config{Every: 50, Recover: true, CountKnotCycles: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Net.Step()
		d.Tick()
	}
}
