// Shard-scaling benchmarks for the parallel cycle engine: the saturated
// 16-ary 2-cube of BenchmarkSimCycleObsOff stepped at 1, 2, 4 and 8 shards.
// The engine guarantees bit-identical results for every shard count, so
// these measure pure execution strategy: Shards1 must stay within noise of
// the sequential baseline (the 1-shard path IS the sequential engine — no
// mailboxes, no barriers), and higher counts buy wall-clock on multi-core
// runners.
//
//	go test -run='^$' -bench=SimCycleShards -benchmem .
//
// FLEXSIM_BENCH_SHARDS_OUT=BENCH_shards.json go test -run TestEmitShardBench .
// re-measures all four points with testing.Benchmark and writes the
// machine-readable trajectory file (ns/cycle, allocs/op, speedup-vs-1-shard).
package flexsim_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"flexsim/internal/sim"
)

// shardBenchRunner builds the saturated 16-ary 2-cube runner used by every
// shard point: observability off, detector parked, 2000 warm cycles so the
// steady state is allocation-free.
func shardBenchRunner(tb testing.TB, shards int) *sim.Runner {
	tb.Helper()
	cfg := sim.Default()
	cfg.Load = 1.0
	cfg.DetectEvery = 1 << 30
	cfg.WarmupCycles = 0
	cfg.MetricsEvery = 0
	cfg.Shards = shards
	r, err := sim.NewRunner(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 2000; i++ { // reach saturation occupancy
		r.StepCycle()
	}
	return r
}

func benchSimCycleShards(b *testing.B, shards int) {
	r := shardBenchRunner(b, shards)
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StepCycle()
	}
}

func BenchmarkSimCycleShards1(b *testing.B) { benchSimCycleShards(b, 1) }
func BenchmarkSimCycleShards2(b *testing.B) { benchSimCycleShards(b, 2) }
func BenchmarkSimCycleShards4(b *testing.B) { benchSimCycleShards(b, 4) }
func BenchmarkSimCycleShards8(b *testing.B) { benchSimCycleShards(b, 8) }

// shardBenchPoint is one row of BENCH_shards.json.
type shardBenchPoint struct {
	Shards      int     `json:"shards"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SpeedupVs1  float64 `json:"speedup_vs_1_shard"`
}

// shardBenchFile is the BENCH_shards.json envelope: enough machine context
// to judge the numbers (a 1-core runner cannot show multi-shard speedup).
type shardBenchFile struct {
	Benchmark  string            `json:"benchmark"`
	Network    string            `json:"network"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Points     []shardBenchPoint `json:"points"`
}

// TestEmitShardBench re-measures the four shard points and writes the
// machine-readable perf trajectory to $FLEXSIM_BENCH_SHARDS_OUT; without the
// variable it is a no-op, so `go test ./...` never pays the measurement.
func TestEmitShardBench(t *testing.T) {
	out := os.Getenv("FLEXSIM_BENCH_SHARDS_OUT")
	if out == "" {
		t.Skip("set FLEXSIM_BENCH_SHARDS_OUT to write BENCH_shards.json")
	}
	file := shardBenchFile{
		Benchmark:  "BenchmarkSimCycleShards",
		Network:    "16-ary 2-cube, tfar, load 1.0, detector off",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		s := shards
		res := testing.Benchmark(func(b *testing.B) { benchSimCycleShards(b, s) })
		ns := float64(res.NsPerOp())
		if shards == 1 {
			base = ns
		}
		file.Points = append(file.Points, shardBenchPoint{
			Shards:      shards,
			NsPerCycle:  ns,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			SpeedupVs1:  base / ns,
		})
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
