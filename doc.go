// Package flexsim is a flit-level interconnection-network simulator with
// true deadlock detection, reproducing "Characterization of Deadlocks in
// Interconnection Networks" (Warnakulasuriya & Pinkston, IPPS 1997).
//
// The library lives under internal/; entry points:
//
//   - internal/core: public facade (Config, Run, context-first RunAll/LoadSweep)
//   - internal/runner: resilient execution engine (cancellation, panic
//     isolation, content-addressed result caching for resume)
//   - internal/cwg: channel wait-for graphs and knot-based deadlock theory
//   - internal/experiments: regenerates every figure of the paper
//   - cmd/flexsim, cmd/charsweep, cmd/cwgviz: command-line tools
//   - examples/: runnable demonstrations
//
// See README.md for a guided tour and DESIGN.md for the system inventory.
package flexsim
