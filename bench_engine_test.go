// Engine-telemetry benchmarks and the bench-compare guard.
//
// The telemetry contract is "zero-cost when disabled": the profiled step
// drivers are separate functions selected once at attach time, so a run
// without an EngineStats executes PR 6's engine unchanged. Two artifacts
// enforce and document that:
//
//   - TestBenchCompare (FLEXSIM_BENCH_COMPARE=1) re-measures the obs-off
//     1-shard cycle and fails on >5% ns/cycle regression against a baseline
//     BENCH_shards.json from the same machine class, and on ANY allocs/op
//     growth regardless of machine (allocation counts are deterministic).
//
//   - TestEmitEngineBench (FLEXSIM_BENCH_ENGINE_OUT=...) writes
//     BENCH_engine.json: telemetry-off vs telemetry-on cost at 1 and 4
//     shards plus the measured phase/stall breakdown of a profiled run.
//
//     go test -run='^$' -bench=SimCycleEngine -benchmem .
package flexsim_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"flexsim/internal/network"
	"flexsim/internal/sim"
)

// engineBenchRunner is shardBenchRunner with engine telemetry attached: the
// same saturated 16-ary 2-cube, stepping through the profiled drivers.
func engineBenchRunner(tb testing.TB, shards int) *sim.Runner {
	tb.Helper()
	cfg := sim.Default()
	cfg.Load = 1.0
	cfg.DetectEvery = 1 << 30
	cfg.WarmupCycles = 0
	cfg.MetricsEvery = 0
	cfg.Shards = shards
	cfg.ProfileEngine = true
	r, err := sim.NewRunner(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 2000; i++ { // reach saturation occupancy
		r.StepCycle()
	}
	return r
}

func benchSimCycleEngine(b *testing.B, shards int) {
	r := engineBenchRunner(b, shards)
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StepCycle()
	}
}

// BenchmarkSimCycleEngineProfiled{1,4}: the telemetry-ON cost, to compare
// against BenchmarkSimCycleShards{1,4} (telemetry off). The delta is the
// price of -profile-engine, not of the default configuration.
func BenchmarkSimCycleEngineProfiled1(b *testing.B) { benchSimCycleEngine(b, 1) }
func BenchmarkSimCycleEngineProfiled4(b *testing.B) { benchSimCycleEngine(b, 4) }

// engineBenchPoint is one telemetry-off/on pair at a shard count.
type engineBenchPoint struct {
	Shards        int     `json:"shards"`
	OffNsPerCycle float64 `json:"off_ns_per_cycle"`
	OnNsPerCycle  float64 `json:"on_ns_per_cycle"`
	OverheadFrac  float64 `json:"overhead_frac"`
	OffAllocs     int64   `json:"off_allocs_per_op"`
	OnAllocs      int64   `json:"on_allocs_per_op"`
}

// enginePhaseSummary is the measured share of one engine phase in a
// profiled run.
type enginePhaseSummary struct {
	Phase     string  `json:"phase"`
	BusyFrac  float64 `json:"busy_frac"`
	StallFrac float64 `json:"stall_frac_of_wall"`
}

// engineBenchFile is the BENCH_engine.json envelope.
type engineBenchFile struct {
	Benchmark  string               `json:"benchmark"`
	Network    string               `json:"network"`
	GoVersion  string               `json:"go_version"`
	GOOS       string               `json:"goos"`
	GOARCH     string               `json:"goarch"`
	NumCPU     int                  `json:"num_cpu"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Points     []engineBenchPoint   `json:"points"`
	Phases     []enginePhaseSummary `json:"phases"`
	CrossShard int64                `json:"cross_shard_transfers"`
}

// TestEmitEngineBench measures telemetry-off vs telemetry-on at 1 and 4
// shards plus a phase-timing summary and writes BENCH_engine.json to
// $FLEXSIM_BENCH_ENGINE_OUT; without the variable it is a no-op.
func TestEmitEngineBench(t *testing.T) {
	out := os.Getenv("FLEXSIM_BENCH_ENGINE_OUT")
	if out == "" {
		t.Skip("set FLEXSIM_BENCH_ENGINE_OUT to write BENCH_engine.json")
	}
	file := engineBenchFile{
		Benchmark:  "BenchmarkSimCycleEngineProfiled",
		Network:    "16-ary 2-cube, tfar, load 1.0, detector off",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, shards := range []int{1, 4} {
		s := shards
		off := testing.Benchmark(func(b *testing.B) { benchSimCycleShards(b, s) })
		on := testing.Benchmark(func(b *testing.B) { benchSimCycleEngine(b, s) })
		offNs, onNs := float64(off.NsPerOp()), float64(on.NsPerOp())
		file.Points = append(file.Points, engineBenchPoint{
			Shards:        shards,
			OffNsPerCycle: offNs,
			OnNsPerCycle:  onNs,
			OverheadFrac:  (onNs - offNs) / offNs,
			OffAllocs:     off.AllocsPerOp(),
			OnAllocs:      on.AllocsPerOp(),
		})
	}
	// Phase breakdown from a dedicated profiled 4-shard run.
	r := engineBenchRunner(t, 4)
	for i := 0; i < 2000; i++ {
		r.StepCycle()
	}
	es := r.Net.EngineStatsAttached()
	busy, wall := es.BusyNs(), es.TotalWallNs()
	for ph := 0; ph < network.EnginePhases; ph++ {
		var phBusy int64
		for s := range es.PhaseNs {
			phBusy += es.PhaseNs[s][ph]
		}
		file.Phases = append(file.Phases, enginePhaseSummary{
			Phase:     network.EnginePhaseNames[ph],
			BusyFrac:  frac(phBusy, busy),
			StallFrac: frac(es.StallNs[ph], wall),
		})
	}
	file.CrossShard = es.CrossShardTransfers()
	r.Close()

	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func frac(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// TestBenchCompare is the CI bench-compare gate: with FLEXSIM_BENCH_COMPARE=1
// it re-measures the obs-off 1-shard cycle and compares it against the
// baseline file ($FLEXSIM_BENCH_BASELINE, default BENCH_shards.json).
// Allocations are deterministic, so any allocs/op growth fails on every
// machine; the >5% ns/cycle gate applies only when the baseline came from
// the same machine class (equal GOARCH and CPU count) — wall-clock numbers
// from a different machine are not comparable and are only logged.
func TestBenchCompare(t *testing.T) {
	if os.Getenv("FLEXSIM_BENCH_COMPARE") == "" {
		t.Skip("set FLEXSIM_BENCH_COMPARE=1 to run the bench-compare gate")
	}
	path := os.Getenv("FLEXSIM_BENCH_BASELINE")
	if path == "" {
		path = "BENCH_shards.json"
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench baseline: %v", err)
	}
	var base shardBenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("bench baseline %s: %v", path, err)
	}
	var ref *shardBenchPoint
	for i := range base.Points {
		if base.Points[i].Shards == 1 {
			ref = &base.Points[i]
		}
	}
	if ref == nil {
		t.Fatalf("baseline %s has no 1-shard point", path)
	}

	res := testing.Benchmark(func(b *testing.B) { benchSimCycleShards(b, 1) })
	ns := float64(res.NsPerOp())
	t.Logf("obs-off SimCycleShards1: %.0f ns/cycle, %d allocs/op (baseline %.0f ns, %d allocs from %s/%d-cpu)",
		ns, res.AllocsPerOp(), ref.NsPerCycle, ref.AllocsPerOp, base.GOARCH, base.NumCPU)

	if res.AllocsPerOp() > ref.AllocsPerOp {
		t.Errorf("allocs/op grew: %d > baseline %d — the disabled hot path is no longer allocation-identical",
			res.AllocsPerOp(), ref.AllocsPerOp)
	}
	sameMachine := base.GOARCH == runtime.GOARCH && base.NumCPU == runtime.NumCPU()
	if !sameMachine {
		t.Logf("baseline machine differs (%s/%d-cpu vs %s/%d-cpu); ns gate skipped, allocs gate enforced",
			base.GOARCH, base.NumCPU, runtime.GOARCH, runtime.NumCPU())
		return
	}
	if ns > 1.05*ref.NsPerCycle {
		t.Errorf("obs-off SimCycleShards1 regressed >5%%: %.0f ns/cycle vs baseline %.0f", ns, ref.NsPerCycle)
	}
}
