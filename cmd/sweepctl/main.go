// Command sweepctl is the sweep service client.
//
//	sweepctl mkspec -experiment fig5 -quick > spec.json   # spec from an experiment
//	sweepctl submit -f spec.json                          # fire and forget
//	sweepctl submit -f spec.json -watch                   # follow to completion
//	sweepctl list                                         # all sweeps
//	sweepctl status s1-ab12cd34                           # one sweep's progress
//	sweepctl watch s1-ab12cd34                            # live SSE stream
//	sweepctl results s1-ab12cd34 > results.jsonl          # specv1 PointResult JSONL
//	sweepctl health                                       # coordinator liveness
//
// Every command takes -server (default http://127.0.0.1:8600). Specs and
// results are strict specv1 JSON, so a spec built here runs identically on
// the service and on a local charsweep -spec run — and, through a shared
// -store directory, yields byte-identical result payloads.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"flexsim/internal/api/specv1"
	"flexsim/internal/experiments"
	"flexsim/internal/sweepsvc"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, `usage: sweepctl <command> [flags]

commands:
  submit   submit a sweep spec (-f file, - = stdin; -watch follows it)
  status   print one sweep's progress
  results  print a sweep's results as specv1 JSONL
  watch    stream a sweep's events until it settles
  list     print every sweep's status
  mkspec   print the specv1 spec for an experiment
  health   check the coordinator's /healthz

run "sweepctl <command> -h" for the command's flags`)
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(rest)
	case "status":
		err = cmdStatus(rest)
	case "results":
		err = cmdResults(rest)
	case "watch":
		err = cmdWatch(rest)
	case "list":
		err = cmdList(rest)
	case "mkspec":
		err = cmdMkspec(rest)
	case "health":
		err = cmdHealth(rest)
	case "-h", "-help", "--help", "help":
		return usage()
	default:
		fmt.Fprintf(os.Stderr, "sweepctl: unknown command %q\n", cmd)
		return usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepctl:", err)
		return 1
	}
	return 0
}

// bindClient registers the shared -server flag.
func bindClient(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8600", "sweep coordinator base URL")
}

func client(server string) *sweepsvc.Client {
	return &sweepsvc.Client{Base: server}
}

// summary renders one sweep's status as a single line. "misses" counts the
// points not served from the shared store — an identical resubmission of a
// completed sweep reports 0 misses.
func summary(st *specv1.SweepStatus) string {
	line := fmt.Sprintf("sweep %s [%s] %s: %d/%d settled — %d done, %d cached, %d failed, %d retries, %d misses",
		st.ID, st.Name, st.State, st.Settled(), st.Total,
		st.Done, st.Cached, st.Failed, st.Retries, st.Total-st.Cached)
	if st.Running > 0 || st.Pending > 0 {
		line += fmt.Sprintf(" (%d running, %d pending)", st.Running, st.Pending)
	}
	if len(st.RetryCauses) > 0 {
		causes := make([]string, 0, len(st.RetryCauses))
		for c := range st.RetryCauses {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		parts := make([]string, len(causes))
		for i, c := range causes {
			parts[i] = fmt.Sprintf("%s:%d", c, st.RetryCauses[c])
		}
		line += " [retries " + strings.Join(parts, " ") + "]"
	}
	if st.Stolen > 0 {
		line += fmt.Sprintf(" [%d stolen]", st.Stolen)
	}
	return line
}

// failExit reports failed points as an error so the process exits non-zero.
func failExit(st *specv1.SweepStatus) error {
	if st.Failed > 0 {
		return fmt.Errorf("sweep %s: %d point(s) failed", st.ID, st.Failed)
	}
	return nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := bindClient(fs)
	file := fs.String("f", "-", "sweep spec file (specv1 JSON; - = stdin)")
	watch := fs.Bool("watch", false, "follow the sweep's event stream until it settles")
	asJSON := fs.Bool("json", false, "with -watch: print raw specv1 event JSON, one object per line")
	fs.Parse(args)

	in := io.Reader(os.Stdin)
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spec, err := specv1.DecodeSpec(in)
	if err != nil {
		return err
	}
	c := client(*server)
	ctx := context.Background()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(summary(st))
	if !*watch {
		return nil
	}
	if st.State != specv1.SweepDone {
		if err := watchSweep(ctx, c, st.ID, *asJSON); err != nil {
			return err
		}
	}
	if st, err = c.Status(ctx, st.ID); err != nil {
		return err
	}
	fmt.Println(summary(st))
	return failExit(st)
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := bindClient(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sweepctl status [-server URL] <sweep-id>")
	}
	st, err := client(*server).Status(context.Background(), fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Println(summary(st))
	return nil
}

func cmdResults(args []string) error {
	fs := flag.NewFlagSet("results", flag.ExitOnError)
	server := bindClient(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sweepctl results [-server URL] <sweep-id>")
	}
	results, err := client(*server).Results(context.Background(), fs.Arg(0))
	if err != nil {
		return err
	}
	return specv1.WriteResults(os.Stdout, results)
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := bindClient(fs)
	asJSON := fs.Bool("json", false, "print raw specv1 event JSON, one object per line")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sweepctl watch [-server URL] [-json] <sweep-id>")
	}
	c := client(*server)
	ctx := context.Background()
	if err := watchSweep(ctx, c, fs.Arg(0), *asJSON); err != nil {
		return err
	}
	st, err := c.Status(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	return failExit(st)
}

// watchSweep follows one sweep's SSE stream, printing point settlements,
// retries and steals (with their cause), and the final summary; it returns
// when the terminal done event arrives. With asJSON the raw specv1 event
// objects are printed one per line instead.
func watchSweep(ctx context.Context, c *sweepsvc.Client, id string, asJSON bool) error {
	enc := json.NewEncoder(os.Stdout)
	return c.Watch(ctx, id, func(ev *specv1.Event) error {
		if asJSON {
			return enc.Encode(ev)
		}
		switch ev.Type {
		case "point":
			if p := ev.Point; p != nil {
				line := fmt.Sprintf("  point %d load %.3g %s", p.Index, p.Load, p.Status)
				if p.Worker != "" {
					line += " on " + p.Worker
				}
				if p.Attempts > 1 {
					line += fmt.Sprintf(" (attempt %d)", p.Attempts)
				}
				if p.Error != "" {
					line += ": " + p.Error
				}
				fmt.Println(line)
			}
		case "retry":
			if p := ev.Point; p != nil {
				fmt.Printf("  point %d retry (attempt %d, cause %s)\n", p.Index, p.Attempts, ev.Cause)
			}
		case "steal":
			if p := ev.Point; p != nil {
				fmt.Printf("  point %d stolen by %s (from %s)\n", p.Index, p.Worker, ev.Cause)
			}
		case "done":
			if ev.Stat != nil {
				fmt.Println(summary(ev.Stat))
			}
		}
		return nil
	})
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	server := bindClient(fs)
	fs.Parse(args)
	list, err := client(*server).List(context.Background())
	if err != nil {
		return err
	}
	if len(list.Sweeps) == 0 {
		fmt.Println("no sweeps")
		return nil
	}
	for _, st := range list.Sweeps {
		fmt.Println(summary(&st))
	}
	return nil
}

func cmdMkspec(args []string) error {
	fs := flag.NewFlagSet("mkspec", flag.ExitOnError)
	experiment := fs.String("experiment", "fig5", "experiment id ("+strings.Join(experiments.Names(), "|")+")")
	quick := fs.Bool("quick", false, "scaled-down runs (8-ary 2-cube, short windows)")
	loads := fs.String("loads", "", "comma-separated load override, e.g. 0.2,0.6,1.0")
	seed := fs.Uint64("seed", 0, "seed offset (0 = default)")
	fs.Parse(args)

	if _, err := experiments.ByName(*experiment); err != nil {
		names := experiments.Names()
		sort.Strings(names)
		return fmt.Errorf("%v (known: %s)", err, strings.Join(names, ", "))
	}
	loadVals, err := specv1.ParseLoads(*loads)
	if err != nil {
		return err
	}
	spec := experiments.Spec(*experiment, experiments.Options{Quick: *quick, Seed: *seed, Loads: loadVals})
	return specv1.EncodeSpec(os.Stdout, spec)
}

func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	server := bindClient(fs)
	fs.Parse(args)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(*server, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", *server, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	fmt.Printf("%s: %s\n", *server, strings.TrimSpace(string(body)))
	return nil
}
