// Command cwgviz runs a simulation until the first deadlock and dumps the
// channel wait-for graph at the moment of detection in Graphviz DOT format,
// with knot vertices highlighted, plus the paper-style characterization of
// each deadlock (deadlock set, resource set, knot cycle density, dependent
// messages) and its replayed formation metrics (first blocked member, knot
// closure cycle, detection lag).
//
//	cwgviz -routing dor -uni -load 0.9 > deadlock.dot
//	dot -Tsvg deadlock.dot -o deadlock.svg
//
// With -at-cycle the dumped graph is not the detection-time CWG but the
// event-sourced reconstruction at an earlier cycle, so the knot can be
// watched assembling:
//
//	cwgviz -routing dor -uni -load 0.9 -at-cycle 3000 > forming.dot
//
// With -repro the CWG is not simulated at all: a flexcheck repro file (a
// model-checked counterexample or exemplar state) is loaded, restored into
// a fresh network, re-judged by the real detector, and rendered:
//
//	flexcheck -grid short -repro-dir repros >/dev/null
//	cwgviz -repro repros/ring-uni-k3-vc1-dor-m3-l2-b1-exemplar.json > knot.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"flexsim/internal/cwg"
	"flexsim/internal/message"
	"flexsim/internal/modelcheck"
	"flexsim/internal/sim"
)

func main() {
	cfg := sim.Quick()
	flag.IntVar(&cfg.K, "k", cfg.K, "radix")
	flag.IntVar(&cfg.N, "n", cfg.N, "dimensions")
	uni := flag.Bool("uni", false, "unidirectional channels")
	flag.BoolVar(&cfg.Mesh, "mesh", false, "mesh instead of torus")
	flag.IntVar(&cfg.IrregularNodes, "irregular", 0, "irregular switch network with this many nodes")
	flag.IntVar(&cfg.IrregularLinks, "irregular-links", 8, "extra links beyond the irregular spanning tree")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.IntVar(&cfg.BufferDepth, "buf", cfg.BufferDepth, "edge buffer depth (flits)")
	flag.StringVar(&cfg.Routing, "routing", "dor", "routing algorithm")
	flag.StringVar(&cfg.Traffic, "traffic", cfg.Traffic, "traffic pattern")
	flag.Float64Var(&cfg.Load, "load", 0.9, "normalized offered load")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	maxCycles := flag.Int("max-cycles", 200000, "give up after this many simulation cycles")
	atCycle := flag.Int64("at-cycle", -1, "dump the replayed CWG at this cycle instead of detection time")
	flag.IntVar(&cfg.ForensicsDepth, "forensics-depth", 1<<16, "resource-event ring size for formation replay (0 disables)")
	repro := flag.String("repro", "", "render a flexcheck repro file instead of simulating")
	flag.Parse()
	if *repro != "" {
		if err := renderRepro(*repro); err != nil {
			fmt.Fprintln(os.Stderr, "cwgviz:", err)
			os.Exit(1)
		}
		return
	}
	cfg.Bidirectional = !*uni
	cfg.Recover = false // freeze the first deadlock for inspection
	cfg.WarmupCycles = 0
	if *atCycle >= 0 && cfg.ForensicsDepth <= 0 {
		fmt.Fprintln(os.Stderr, "cwgviz: -at-cycle requires -forensics-depth > 0")
		os.Exit(1)
	}

	r, err := sim.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cwgviz:", err)
		os.Exit(1)
	}
	label := func(vc message.VC) string { return r.Net.VCString(vc) }
	for cycle := 0; cycle < *maxCycles; cycle++ {
		r.StepCycle()
		if r.Net.Now()%int64(cfg.DetectEvery) != 0 {
			continue
		}
		g := cwg.Build(r.Detector.Snapshot())
		an := g.Analyze(cwg.Options{CountKnotCycles: true})
		if len(an.Deadlocks) == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "deadlock detected at cycle %d (%d knot(s), %d blocked messages, %d vertices, %d arcs)\n",
			r.Net.Now(), len(an.Deadlocks), an.BlockedMessages, g.NumVertices(), g.NumEdges())
		for i, d := range an.Deadlocks {
			fmt.Fprintf(os.Stderr, "  deadlock %d: %s, deadlock set %v (%d msgs), resource set %d VCs, knot %d VCs, %d cycles, %d dependent\n",
				i, d.Kind, d.DeadlockSet, len(d.DeadlockSet), len(d.ResourceSet), len(d.KnotVCs), d.KnotCycles, len(d.Dependent))
			if r.Forensics != nil {
				if f := r.Forensics.Analyze(r.Net.Now(), &d); f != nil {
					trunc := ""
					if f.Truncated {
						trunc = " (ring truncated; closure is an upper bound)"
					}
					fmt.Fprintf(os.Stderr, "    formation: first member blocked at %d, knot closed at %d (%d cycles forming, closed by msg %d), detected %d cycles later%s\n",
						f.FirstBlocked, f.KnotClosed, f.FormationCycles, f.ClosedBy, f.DetectionLag, trunc)
				}
			}
		}
		if *atCycle >= 0 {
			rg, ok := r.Forensics.CWGAt(*atCycle)
			if !ok {
				fmt.Fprintf(os.Stderr, "cwgviz: cycle %d is outside the replayable window [%d, %d]\n",
					*atCycle, r.Forensics.MinReplayCycle(), r.Net.Now())
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "replayed CWG at cycle %d: %d vertices, %d arcs\n",
				*atCycle, rg.NumVertices(), rg.NumEdges())
			fmt.Print(rg.DOT(label))
			return
		}
		fmt.Print(g.DOT(label))
		return
	}
	fmt.Fprintf(os.Stderr, "cwgviz: no deadlock within %d cycles (try a higher load, -uni, or -routing dor)\n", *maxCycles)
	os.Exit(2)
}

// renderRepro loads a flexcheck repro file, replays it through the real
// pipeline (restore, detect, knot analysis), prints the characterization to
// stderr and the full CWG in DOT to stdout.
func renderRepro(path string) error {
	rep, err := modelcheck.LoadRepro(path)
	if err != nil {
		return err
	}
	rp, err := rep.Replay()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "repro %s (%s): %s\n", path, rep.Kind, rep.Detail)
	fmt.Fprintf(os.Stderr, "  config %s, %d messages restored, ground truth stuck=%#x live=%#x\n",
		rep.Config.Name(), len(rep.Messages), rep.Stuck, rep.Live)
	an := rp.Analysis
	fmt.Fprintf(os.Stderr, "  detector: %d knot(s), %d blocked messages\n",
		len(an.Deadlocks), an.BlockedMessages)
	for i, d := range an.Deadlocks {
		fmt.Fprintf(os.Stderr, "  deadlock %d: %s, deadlock set %v (%d msgs), resource set %d VCs, knot %d VCs, %d cycles, %d dependent\n",
			i, d.Kind, d.DeadlockSet, len(d.DeadlockSet), len(d.ResourceSet), len(d.KnotVCs), d.KnotCycles, len(d.Dependent))
	}
	label := func(vc message.VC) string { return rp.Net.VCString(vc) }
	fmt.Print(rp.Graph.DOT(label))
	return nil
}
