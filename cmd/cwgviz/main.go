// Command cwgviz runs a simulation until the first deadlock and dumps the
// channel wait-for graph at the moment of detection in Graphviz DOT format,
// with knot vertices highlighted, plus the paper-style characterization of
// each deadlock (deadlock set, resource set, knot cycle density, dependent
// messages).
//
//	cwgviz -routing dor -uni -load 0.9 > deadlock.dot
//	dot -Tsvg deadlock.dot -o deadlock.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"flexsim/internal/cwg"
	"flexsim/internal/message"
	"flexsim/internal/sim"
)

func main() {
	cfg := sim.Quick()
	flag.IntVar(&cfg.K, "k", cfg.K, "radix")
	flag.IntVar(&cfg.N, "n", cfg.N, "dimensions")
	uni := flag.Bool("uni", false, "unidirectional channels")
	flag.BoolVar(&cfg.Mesh, "mesh", false, "mesh instead of torus")
	flag.IntVar(&cfg.IrregularNodes, "irregular", 0, "irregular switch network with this many nodes")
	flag.IntVar(&cfg.IrregularLinks, "irregular-links", 8, "extra links beyond the irregular spanning tree")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.IntVar(&cfg.BufferDepth, "buf", cfg.BufferDepth, "edge buffer depth (flits)")
	flag.StringVar(&cfg.Routing, "routing", "dor", "routing algorithm")
	flag.StringVar(&cfg.Traffic, "traffic", cfg.Traffic, "traffic pattern")
	flag.Float64Var(&cfg.Load, "load", 0.9, "normalized offered load")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	maxCycles := flag.Int("max-cycles", 200000, "give up after this many simulation cycles")
	flag.Parse()
	cfg.Bidirectional = !*uni
	cfg.Recover = false // freeze the first deadlock for inspection
	cfg.WarmupCycles = 0

	r, err := sim.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cwgviz:", err)
		os.Exit(1)
	}
	for cycle := 0; cycle < *maxCycles; cycle++ {
		r.StepCycle()
		if r.Net.Now()%int64(cfg.DetectEvery) != 0 {
			continue
		}
		g := cwg.Build(r.Detector.Snapshot())
		an := g.Analyze(cwg.Options{CountKnotCycles: true})
		if len(an.Deadlocks) == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "deadlock detected at cycle %d (%d knot(s), %d blocked messages, %d vertices, %d arcs)\n",
			r.Net.Now(), len(an.Deadlocks), an.BlockedMessages, g.NumVertices(), g.NumEdges())
		for i, d := range an.Deadlocks {
			fmt.Fprintf(os.Stderr, "  deadlock %d: %s, deadlock set %v (%d msgs), resource set %d VCs, knot %d VCs, %d cycles, %d dependent\n",
				i, d.Kind, d.DeadlockSet, len(d.DeadlockSet), len(d.ResourceSet), len(d.KnotVCs), d.KnotCycles, len(d.Dependent))
		}
		fmt.Print(g.DOT(func(vc message.VC) string { return r.Net.VCString(vc) }))
		return
	}
	fmt.Fprintf(os.Stderr, "cwgviz: no deadlock within %d cycles (try a higher load, -uni, or -routing dor)\n", *maxCycles)
	os.Exit(2)
}
