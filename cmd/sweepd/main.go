// Command sweepd is the sweep service: a coordinator that accepts versioned
// sweep specifications over HTTP, schedules their points onto a worker pool,
// dedupes results through a shared content-addressed store, and streams
// progress to any number of clients (see sweepctl).
//
//	sweepd -http :8600 -store sweep.store                 # in-process workers
//	sweepd -worker -http :8601 -store sweep.store         # one fleet worker
//	sweepd -http :8600 -store sweep.store \
//	       -fleet http://host1:8601,http://host2:8601     # coordinator of a fleet
//
// Every process in the fleet shares one store directory: the store's
// single-write appends make concurrent readers and writers safe, so a result
// computed anywhere is served everywhere — including to a later local
// charsweep run pointed at the same directory.
//
// The coordinator journals submissions and completions (-journal), so a
// restarted sweepd resumes unfinished sweeps without re-executing completed
// points. SIGINT/SIGTERM drains gracefully: submissions are refused,
// in-flight points get -drain-grace to finish, and the journal resumes the
// rest on the next start.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"flexsim/cmd/internal/flags"
	"flexsim/internal/obs"
	"flexsim/internal/obs/fleettrace"
	"flexsim/internal/runner"
	"flexsim/internal/sweepsvc"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		httpAddr    = flag.String("http", "127.0.0.1:8600", "serve the sweep API (plus /metrics, /healthz, /progress) on this address")
		store       = flag.String("store", "sweep.store", "shared content-addressed result store directory")
		worker      = flag.Bool("worker", false, "run as a fleet worker (serve /api/v1/run) instead of a coordinator")
		name        = flag.String("name", "", "worker name reported in results (default: the listen address)")
		journal     = flag.String("journal", "", "coordinator journal for idempotent restart (default: <store>/journal.jsonl; \"none\" disables)")
		workers     = flag.Int("workers", 0, "in-process workers (0 = GOMAXPROCS when -fleet is empty, else none)")
		fleet       = flag.String("fleet", "", "comma-separated fleet worker base URLs, e.g. http://host:8601")
		maxRetries  = flag.Int("max-retries", 0, "re-executions per point after worker death/timeouts (0 = default of 2, negative = none)")
		pointTO     = flag.Duration("point-timeout", 0, "per-point execution timeout (0 = unbounded)")
		healthEvery = flag.Duration("health-every", 0, "poll period when gating an unhealthy fleet worker on /healthz (0 = 250ms)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "grace for in-flight points when draining on SIGINT/SIGTERM")
		fleetSpans  = flag.String("fleet-spans", "", "coordinator: append the fleet span log (scheduler JSONL, one record per point transition) to this file")
		fleetPerf   = flag.String("fleet-perfetto", "", "coordinator: write the fleet Perfetto timeline (one thread per worker, one slice per attempt) here at drain")
		spansOut    = flag.String("spans-out", "", "worker: per-run Perfetto timeline path (\"*\" expands to <label>-s<seed>-l<load>)")
	)
	flag.Parse()

	cache, err := runner.Open(*store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}
	defer cache.Close()

	ctx, cancel := flags.SignalContext(0)
	defer cancel()

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...)
	}

	if *worker {
		wk := &sweepsvc.Worker{Name: *name, Cache: cache, SpansPath: *spansOut}
		srv, err := obs.Serve(*httpAddr, obs.WithHandler("/api/v1/", wk.Handler()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			return 1
		}
		defer srv.Close()
		if wk.Name == "" {
			wk.Name = srv.Addr()
		}
		logf("worker %s: serving /api/v1/run on http://%s (store %s, %d result(s) on disk)",
			wk.Name, srv.Addr(), cache.Dir(), cache.Len())
		<-ctx.Done()
		logf("worker %s: shutting down (%d run(s) executed)", wk.Name, wk.Executions())
		return 0
	}

	journalPath := *journal
	switch journalPath {
	case "":
		journalPath = filepath.Join(*store, "journal.jsonl")
	case "none":
		journalPath = ""
	}
	var fleetURLs []string
	for _, u := range strings.Split(*fleet, ",") {
		if u = strings.TrimSpace(u); u != "" {
			fleetURLs = append(fleetURLs, u)
		}
	}

	// Fleet tracing and scheduler telemetry are always collected on the
	// coordinator; the span-log JSONL and Perfetto timeline are written only
	// when their flags name a destination.
	var spansFile *os.File
	if *fleetSpans != "" {
		f, err := os.OpenFile(*fleetSpans, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			return 1
		}
		spansFile = f
		defer spansFile.Close()
	}
	fleetLog := fleettrace.NewLog(spansFile)
	fleetMetrics := obs.NewFleetMetrics()

	progress := obs.NewSweepProgress(nil)
	svc, err := sweepsvc.New(sweepsvc.Config{
		Cache:        cache,
		JournalPath:  journalPath,
		LocalWorkers: *workers,
		Fleet:        fleetURLs,
		MaxRetries:   *maxRetries,
		PointTimeout: *pointTO,
		HealthEvery:  *healthEvery,
		Progress:     progress,
		Trace:        fleetLog,
		Metrics:      fleetMetrics,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}

	health := func(w io.Writer) {
		jp := journalPath
		if jp == "" {
			jp = "(disabled)"
		}
		sweeps, settled, requeued := svc.ReplayStatus()
		fmt.Fprintf(w, "journal: %s\nreplay: %d sweep(s), %d settled, %d requeued\n", jp, sweeps, settled, requeued)
	}
	srv, err := obs.Serve(*httpAddr,
		obs.WithSweep(progress), obs.WithFleet(fleetMetrics), obs.WithHealth(health),
		obs.WithHandler("/api/v1/", svc.APIHandler()))
	if err != nil {
		svc.Close()
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}
	defer srv.Close()

	mode := fmt.Sprintf("%d in-process worker(s)", *workers)
	if len(fleetURLs) > 0 {
		mode = fmt.Sprintf("fleet of %d worker(s)", len(fleetURLs))
		if *workers > 0 {
			mode += fmt.Sprintf(" + %d in-process", *workers)
		}
	} else if *workers == 0 {
		mode = "GOMAXPROCS in-process workers"
	}
	logf("coordinator on http://%s (%s; store %s, %d result(s) on disk)",
		srv.Addr(), mode, cache.Dir(), cache.Len())

	<-ctx.Done()
	logf("draining (grace %v)...", *drainGrace)
	svc.Drain(*drainGrace)
	logf("drained")
	if err := fleetLog.Err(); err != nil {
		logf("fleet span log: %v", err)
	}
	if *fleetPerf != "" {
		f, err := os.Create(*fleetPerf)
		if err != nil {
			logf("fleet perfetto: %v", err)
			return 1
		}
		werr := fleetLog.WritePerfetto(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			logf("fleet perfetto: %v", werr)
			return 1
		}
		logf("fleet timeline written to %s", *fleetPerf)
	}
	return 0
}
