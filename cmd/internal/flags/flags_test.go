package flags

import (
	"context"
	"flag"
	"io"
	"testing"
	"time"

	"flexsim/internal/sim"
)

// TestBindFlexsimSurface registers the full flexsim flag surface on one
// FlagSet — a duplicate name anywhere in the tables would panic here — and
// checks that parsing lands in the right places.
func TestBindFlexsimSurface(t *testing.T) {
	fs := flag.NewFlagSet("flexsim", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cfg := sim.Default()
	x := BindConfig(fs, &cfg)
	v := BindCommon(fs)

	err := fs.Parse([]string{
		"-k", "8", "-vcs", "3", "-routing", "dor", "-load", "0.9",
		"-uni", "-no-recover", "-census",
		"-spans-out", "trace.json", "-forensics-depth", "4096", "-heatmap-out", "heat.csv",
		"-profile-engine", "-profile-engine-out", "engine.json",
		"-shards", "4",
		"-timeout", "90s", "-cache-dir", "/tmp/c", "-resume=false",
	})
	if err != nil {
		t.Fatal(err)
	}
	x.Apply(&cfg)

	if cfg.K != 8 || cfg.VCs != 3 || cfg.Routing != "dor" || cfg.Load != 0.9 {
		t.Errorf("config flags misbound: %+v", cfg)
	}
	if v.ForensicsDepth != 4096 {
		t.Errorf("ForensicsDepth = %d, want 4096", v.ForensicsDepth)
	}
	if cfg.Shards != 4 {
		t.Errorf("Shards = %d, want 4", cfg.Shards)
	}
	if v.SpansOut != "trace.json" || v.HeatmapOut != "heat.csv" {
		t.Errorf("observability outputs misbound: %+v", v)
	}
	if !v.ProfileEngine || v.ProfileEngineOut != "engine.json" {
		t.Errorf("engine profiling flags misbound: %+v", v)
	}
	if v.EngineProfileSink() == nil {
		t.Error("EngineProfileSink() = nil with -profile-engine set")
	}
	if cfg.Bidirectional || cfg.Recover || !cfg.CycleCensus {
		t.Errorf("inverted extras misapplied: Bidirectional=%v Recover=%v Census=%v",
			cfg.Bidirectional, cfg.Recover, cfg.CycleCensus)
	}
	if v.Timeout != 90*time.Second || v.CacheDir != "/tmp/c" || v.Resume {
		t.Errorf("common flags misbound: %+v", v)
	}
}

// TestBindCharsweepSurface does the same for the charsweep surface.
func TestBindCharsweepSurface(t *testing.T) {
	fs := flag.NewFlagSet("charsweep", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s := BindSweep(fs)
	v := BindCommon(fs)

	err := fs.Parse([]string{
		"-experiment", "fig5", "-quick", "-loads", "0.2, 0.6,1.0",
		"-parallel", "4", "-timeout", "1m",
		"-spans-out", "traces/run.json", "-heatmap-out", "heat.csv", "-forensics-depth", "1024",
		"-profile-engine",
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Experiment != "fig5" || !s.Quick || s.Parallel != 4 {
		t.Errorf("sweep flags misbound: %+v", s)
	}
	// Flag parity with flexsim: the observability artifacts bind through the
	// shared table, and the sweep-side paths gain a per-run "*" placeholder.
	if v.SpansOut != "traces/run.json" || v.HeatmapOut != "heat.csv" || v.ForensicsDepth != 1024 {
		t.Errorf("observability flags misbound: %+v", v)
	}
	if got := PerRunPath(v.SpansOut); got != "traces/run-*.json" {
		t.Errorf("PerRunPath(%q) = %q", v.SpansOut, got)
	}
	if v.EngineProfileSink() == nil {
		t.Error("EngineProfileSink() = nil with -profile-engine set")
	}
	if !v.Resume {
		t.Errorf("resume must default to true")
	}
	opts, err := s.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Loads) != 3 || opts.Loads[0] != 0.2 || opts.Loads[2] != 1.0 {
		t.Errorf("loads parsed as %v", opts.Loads)
	}
	if !opts.Quick || opts.Parallelism != 4 {
		t.Errorf("options miswired: %+v", opts)
	}
	if s.Shards != sim.AutoShards || opts.Shards != sim.AutoShards {
		t.Errorf("-shards must default to auto: flag %d, options %d", s.Shards, opts.Shards)
	}
	if v.Timeout != time.Minute {
		t.Errorf("timeout = %v", v.Timeout)
	}
}

func TestSweepOptionsBadLoads(t *testing.T) {
	s := &Sweep{Loads: "0.2,nope"}
	if _, err := s.Options(); err == nil {
		t.Fatal("bad -loads accepted")
	}
}

// TestSignalContextTimeout: -timeout produces a context that expires; the
// cancel function releases the signal handler.
func TestSignalContextTimeout(t *testing.T) {
	ctx, cancel := SignalContext(time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout context never expired")
	}
	if ctx.Err() != context.DeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", ctx.Err())
	}
}

// TestOpenCacheDisabled: no -cache-dir means no cache, not an error.
func TestOpenCacheDisabled(t *testing.T) {
	v := &Values{}
	c, err := v.OpenCache()
	if err != nil || c != nil {
		t.Fatalf("OpenCache() = %v, %v; want nil, nil", c, err)
	}
}

// TestOpenCacheResumeFalse: -resume=false opens the cache but ignores the
// persisted index.
func TestOpenCacheResumeFalse(t *testing.T) {
	dir := t.TempDir()
	v := &Values{CacheDir: dir, Resume: true}
	c, err := v.OpenCache()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunContext(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	c.Put(quickCfg(), res)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	v.Resume = false
	c, err = v.OpenCache()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != 0 {
		t.Errorf("with -resume=false Len() = %d, want 0", c.Len())
	}
}

// quickCfg is a sub-second configuration for cache tests.
func quickCfg() sim.Config {
	c := sim.Default()
	c.K = 4
	c.WarmupCycles = 20
	c.MeasureCycles = 100
	return c
}
