// Package flags is the single flag-definition table shared by the flexsim
// and charsweep CLIs. Each flag is declared exactly once — name, usage and
// the binding into sim.Config / experiments.Options — so the two commands
// cannot drift: both gain the resilient-execution flags (-timeout,
// -cache-dir, -resume) and the observability flags from the same table,
// and flexsim's configuration surface is one table instead of dozens of
// hand-rolled flag.* calls.
package flags

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flexsim/internal/api/specv1"
	"flexsim/internal/experiments"
	"flexsim/internal/fault"
	"flexsim/internal/obs"
	"flexsim/internal/runner"
	"flexsim/internal/sim"
)

// Values holds the flags shared by both CLIs: run control (timeout), the
// content-addressed result cache (-cache-dir/-resume), interval metrics,
// the observability artifacts (Perfetto spans, VC heatmap, formation
// forensics, engine profiling), the HTTP introspection endpoint, and
// profiling.
type Values struct {
	Timeout          time.Duration
	CacheDir         string
	Resume           bool
	MetricsOut       string
	MetricsEvery     int
	SpansOut         string
	HeatmapOut       string
	ForensicsDepth   int
	ProfileEngine    bool
	ProfileEngineOut string
	HTTPAddr         string
	CPUProfile       string
	MemProfile       string
}

// Def is one row of a flag table: the flag's name, its help text, and the
// binder that registers it against a FlagSet.
type Def[T any] struct {
	Name  string
	Usage string
	Bind  func(fs *flag.FlagSet, v T, usage string)
}

// Common is the shared execution/caching/observability/profiling table.
var Common = []Def[*Values]{
	{"timeout", "cancel the run or sweep after this duration, keeping partial results (0 = no limit)",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.DurationVar(&v.Timeout, "timeout", 0, usage) }},
	{"cache-dir", "persist completed runs under this directory and skip configurations already finished there",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.StringVar(&v.CacheDir, "cache-dir", "", usage) }},
	{"resume", "serve cached results from -cache-dir (set -resume=false to recompute everything while still persisting)",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.BoolVar(&v.Resume, "resume", true, usage) }},
	{"metrics-out", "write interval metrics for every run to this file (.jsonl/.json = JSONL, else CSV)",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.StringVar(&v.MetricsOut, "metrics-out", "", usage) }},
	{"metrics-every", "interval metrics sampling period in cycles",
		func(fs *flag.FlagSet, v *Values, usage string) {
			fs.IntVar(&v.MetricsEvery, "metrics-every", obs.DefaultEvery, usage)
		}},
	{"spans-out", "write each run as a Chrome trace-event (Perfetto) JSON file of per-message spans, detector passes and engine worker lanes (charsweep writes one file per run)",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.StringVar(&v.SpansOut, "spans-out", "", usage) }},
	{"heatmap-out", "write a per-VC occupancy/block heatmap CSV after each run (charsweep writes one file per run)",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.StringVar(&v.HeatmapOut, "heatmap-out", "", usage) }},
	{"forensics-depth", "resource-event ring size for deadlock formation replay (0 = off; incidents gain formation metrics)",
		func(fs *flag.FlagSet, v *Values, usage string) {
			fs.IntVar(&v.ForensicsDepth, "forensics-depth", 0, usage)
		}},
	{"profile-engine", "profile the parallel cycle engine (per-shard phase timings, barrier stalls, cross-shard traffic) and print an imbalance report to stderr",
		func(fs *flag.FlagSet, v *Values, usage string) {
			fs.BoolVar(&v.ProfileEngine, "profile-engine", false, usage)
		}},
	{"profile-engine-out", "write the engine profile report as JSON to this file (implies -profile-engine)",
		func(fs *flag.FlagSet, v *Values, usage string) {
			fs.StringVar(&v.ProfileEngineOut, "profile-engine-out", "", usage)
		}},
	{"http", "serve /metrics, /healthz and /progress on this address while running",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.StringVar(&v.HTTPAddr, "http", "", usage) }},
	{"cpuprofile", "write a CPU profile to this file",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.StringVar(&v.CPUProfile, "cpuprofile", "", usage) }},
	{"memprofile", "write an allocation profile to this file on exit",
		func(fs *flag.FlagSet, v *Values, usage string) { fs.StringVar(&v.MemProfile, "memprofile", "", usage) }},
}

// BindCommon registers the shared table on fs and returns the bound values.
func BindCommon(fs *flag.FlagSet) *Values {
	v := &Values{}
	for _, d := range Common {
		d.Bind(fs, v, d.Usage)
	}
	return v
}

// Extras holds flexsim flags that invert or sit alongside sim.Config
// fields; Apply folds them in after parsing.
type Extras struct {
	Uni           bool
	Census        bool
	NoRecover     bool
	Check         bool
	TraceLast     int
	TraceJSON     string
	IncidentsOut  string
	IncidentsDOT  bool
	FaultSchedule string
}

// configTarget is what the configuration table binds to.
type configTarget struct {
	C *sim.Config
	X *Extras
}

// ConfigDefs maps the full single-run configuration surface onto
// sim.Config: topology, router resources, routing/traffic, workload, run
// control, detection/recovery, validation and tracing.
var ConfigDefs = []Def[configTarget]{
	{"k", "radix (nodes per dimension)",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.IntVar(&t.C.K, "k", t.C.K, usage) }},
	{"n", "dimensions",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.IntVar(&t.C.N, "n", t.C.N, usage) }},
	{"uni", "unidirectional channels (default bidirectional)",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.BoolVar(&t.X.Uni, "uni", false, usage) }},
	{"mesh", "mesh (no wraparound links) instead of torus",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.BoolVar(&t.C.Mesh, "mesh", false, usage) }},
	{"irregular", "random irregular switch network with this many nodes (0 = torus/mesh)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.IrregularNodes, "irregular", 0, usage)
		}},
	{"irregular-links", "extra links beyond the irregular network's spanning tree",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.IrregularLinks, "irregular-links", 0, usage)
		}},
	{"vcs", "virtual channels per physical channel",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.IntVar(&t.C.VCs, "vcs", t.C.VCs, usage) }},
	{"buf", "edge buffer depth in flits",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.BufferDepth, "buf", t.C.BufferDepth, usage)
		}},
	{"msglen", "message length in flits",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.MsgLen, "msglen", t.C.MsgLen, usage)
		}},
	{"msglen-short", "short message length for hybrid (bimodal) lengths",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.MsgLenShort, "msglen-short", t.C.MsgLenShort, usage)
		}},
	{"shortfrac", "fraction of messages using -msglen-short (0 = fixed length)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.Float64Var(&t.C.ShortFrac, "shortfrac", t.C.ShortFrac, usage)
		}},
	{"routing", "routing algorithm (dor|tfar|dateline-dor|duato-far|misroute-far|updown|min-adaptive)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.StringVar(&t.C.Routing, "routing", t.C.Routing, usage)
		}},
	{"traffic", "traffic pattern (uniform|bitrev|transpose|shuffle|hotspot|tornado|neighbor)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.StringVar(&t.C.Traffic, "traffic", t.C.Traffic, usage)
		}},
	{"hotfrac", "hot-spot traffic fraction",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.Float64Var(&t.C.HotspotFrac, "hotfrac", t.C.HotspotFrac, usage)
		}},
	{"load", "normalized offered load (1.0 = capacity)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.Float64Var(&t.C.Load, "load", t.C.Load, usage)
		}},
	{"workload", "program-driven workload instead of open-loop traffic (stencil|allreduce)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.StringVar(&t.C.Workload, "workload", "", usage)
		}},
	{"phases", "workload phases/rounds (default 10)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.WorkloadPhases, "phases", 0, usage)
		}},
	{"compute", "compute cycles between workload phases",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.ComputeDelay, "compute", 0, usage)
		}},
	{"seed", "random seed",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.Uint64Var(&t.C.Seed, "seed", t.C.Seed, usage) }},
	{"warmup", "warmup cycles",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.WarmupCycles, "warmup", t.C.WarmupCycles, usage)
		}},
	{"cycles", "measured cycles",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.MeasureCycles, "cycles", t.C.MeasureCycles, usage)
		}},
	{"detect-every", "deadlock detector period in cycles",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.DetectEvery, "detect-every", t.C.DetectEvery, usage)
		}},
	{"victim", "recovery victim policy (oldest|most|fewest|random)",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.StringVar(&t.C.VictimPolicy, "victim", t.C.VictimPolicy, usage)
		}},
	{"census", "count resource dependency cycles each detector invocation",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.BoolVar(&t.X.Census, "census", false, usage) }},
	{"no-recover", "detect but do not break deadlocks",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.BoolVar(&t.X.NoRecover, "no-recover", false, usage)
		}},
	{"check", "enable per-cycle invariant checking (slow)",
		func(fs *flag.FlagSet, t configTarget, usage string) { fs.BoolVar(&t.X.Check, "check", false, usage) }},
	{"trace-last", "print the last N message lifecycle events after the run",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.X.TraceLast, "trace-last", 0, usage)
		}},
	{"trace-json", "stream message lifecycle events to this file as JSONL",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.StringVar(&t.X.TraceJSON, "trace-json", "", usage)
		}},
	{"incidents-out", "write per-deadlock incident post-mortems to this file as JSONL",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.StringVar(&t.X.IncidentsOut, "incidents-out", "", usage)
		}},
	{"incidents-dot", "include a Graphviz knot-subgraph snapshot in each incident",
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.BoolVar(&t.X.IncidentsDOT, "incidents-dot", false, usage)
		}},
	{"fault-link-mttf", faultMTTFUsage,
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.FaultLinkMTTF, "fault-link-mttf", 0, usage)
		}},
	{"fault-repair", faultRepairUsage,
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.FaultRepair, "fault-repair", 0, usage)
		}},
	{"fault-seed", faultSeedUsage,
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.Uint64Var(&t.C.FaultSeed, "fault-seed", 0, usage)
		}},
	{"fault-schedule", faultScheduleUsage,
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.StringVar(&t.X.FaultSchedule, "fault-schedule", "", usage)
		}},
	{"shards", shardsUsage,
		func(fs *flag.FlagSet, t configTarget, usage string) {
			fs.IntVar(&t.C.Shards, "shards", sim.AutoShards, usage)
		}},
}

// Fault-injection flag help, shared verbatim by both CLIs.
const (
	faultMTTFUsage     = "generate link failures with this mean time-to-failure in cycles (0 = no generated faults)"
	faultRepairUsage   = "repair failed links after this many cycles (0 = failures are permanent)"
	faultSeedUsage     = "seed for the generated fault schedule (0 = derive from -seed)"
	faultScheduleUsage = "inject the fault events in this JSONL schedule file (composable with -fault-link-mttf)"
	shardsUsage        = "parallel cycle-engine shards per run: 1 = sequential, -1 = auto (min(GOMAXPROCS, routers/4)); results are bit-identical for any value"
)

// LoadFaultSchedule parses the -fault-schedule file (when set) into the
// configuration's explicit event list.
func (x *Extras) LoadFaultSchedule(c *sim.Config) error {
	events, err := ReadFaultSchedule(x.FaultSchedule)
	if err != nil {
		return err
	}
	c.FaultEvents = append(c.FaultEvents, events...)
	return nil
}

// ReadFaultSchedule reads a JSONL fault schedule file; an empty path
// returns no events.
func ReadFaultSchedule(path string) ([]fault.Event, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := fault.ReadSchedule(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// BindConfig registers the configuration table on fs against cfg.
func BindConfig(fs *flag.FlagSet, cfg *sim.Config) *Extras {
	x := &Extras{}
	t := configTarget{C: cfg, X: x}
	for _, d := range ConfigDefs {
		d.Bind(fs, t, d.Usage)
	}
	return x
}

// Apply folds the inverted/adjacent flags into the configuration.
func (x *Extras) Apply(c *sim.Config) {
	c.Bidirectional = !x.Uni
	c.CycleCensus = x.Census
	c.Recover = !x.NoRecover
	c.CheckInvariants = x.Check
}

// Sweep holds the charsweep-only flags.
type Sweep struct {
	Experiment    string
	Spec          string
	ResultsOut    string
	Quick         bool
	CSV           bool
	Plot          bool
	Parallel      int
	Seed          uint64
	Loads         string
	Shards        int
	FaultSeed     uint64
	FaultLinkMTTF int
	FaultRepair   int
	FaultSchedule string
}

// SweepDefs is the experiment-harness table.
var SweepDefs = []Def[*Sweep]{
	{"experiment", "experiment id (" + strings.Join(experiments.Names(), "|") + "|all)",
		func(fs *flag.FlagSet, s *Sweep, usage string) {
			fs.StringVar(&s.Experiment, "experiment", "all", usage)
		}},
	{"spec", "run this specv1 sweep spec file (- = stdin) instead of -experiment, emitting specv1 PointResult JSONL (the same wire format the sweep service serves)",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.StringVar(&s.Spec, "spec", "", usage) }},
	{"results-out", "write the -spec run's PointResult JSONL to this file (default stdout)",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.StringVar(&s.ResultsOut, "results-out", "", usage) }},
	{"quick", "scaled-down runs (8-ary 2-cube, short windows)",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.BoolVar(&s.Quick, "quick", false, usage) }},
	{"csv", "emit CSV instead of aligned text",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.BoolVar(&s.CSV, "csv", false, usage) }},
	{"plot", "render ASCII plots (first numeric column as x, log-y) after each table",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.BoolVar(&s.Plot, "plot", false, usage) }},
	{"parallel", "max concurrent simulations (0 = GOMAXPROCS)",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.IntVar(&s.Parallel, "parallel", 0, usage) }},
	{"seed", "seed offset (0 = default)",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.Uint64Var(&s.Seed, "seed", 0, usage) }},
	{"loads", "comma-separated load override, e.g. 0.2,0.6,1.0",
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.StringVar(&s.Loads, "loads", "", usage) }},
	{"fault-link-mttf", faultMTTFUsage,
		func(fs *flag.FlagSet, s *Sweep, usage string) {
			fs.IntVar(&s.FaultLinkMTTF, "fault-link-mttf", 0, usage)
		}},
	{"fault-repair", faultRepairUsage,
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.IntVar(&s.FaultRepair, "fault-repair", 0, usage) }},
	{"fault-seed", faultSeedUsage,
		func(fs *flag.FlagSet, s *Sweep, usage string) { fs.Uint64Var(&s.FaultSeed, "fault-seed", 0, usage) }},
	{"fault-schedule", faultScheduleUsage,
		func(fs *flag.FlagSet, s *Sweep, usage string) {
			fs.StringVar(&s.FaultSchedule, "fault-schedule", "", usage)
		}},
	{"shards", shardsUsage,
		func(fs *flag.FlagSet, s *Sweep, usage string) {
			fs.IntVar(&s.Shards, "shards", sim.AutoShards, usage)
		}},
}

// BindSweep registers the experiment-harness table on fs.
func BindSweep(fs *flag.FlagSet) *Sweep {
	s := &Sweep{}
	for _, d := range SweepDefs {
		d.Bind(fs, s, d.Usage)
	}
	return s
}

// Options converts the parsed sweep flags into experiment options (loads
// parsing can fail; the execution-side fields — Context, Cache, OnPoint,
// metrics — are wired by the caller).
func (s *Sweep) Options() (experiments.Options, error) {
	o := experiments.Options{
		Quick: s.Quick, Parallelism: s.Parallel, Seed: s.Seed, Shards: s.Shards,
		FaultSeed: s.FaultSeed, FaultLinkMTTF: s.FaultLinkMTTF, FaultRepair: s.FaultRepair,
	}
	loads, err := specv1.ParseLoads(s.Loads)
	if err != nil {
		return o, err
	}
	o.Loads = loads
	events, err := ReadFaultSchedule(s.FaultSchedule)
	if err != nil {
		return o, err
	}
	o.FaultEvents = events
	return o, nil
}

// SignalContext returns a context cancelled by SIGINT/SIGTERM and, when
// timeout > 0, after the timeout — the CLI entry point of the cancellation
// path that sim.RunContext polls on the detector cadence.
func SignalContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}

// OpenCache opens the content-addressed result cache selected by
// -cache-dir/-resume; it returns nil when caching is disabled. With
// -resume=false the persisted index is ignored (every run recomputes and
// is re-persisted).
func (v *Values) OpenCache() (*runner.Cache, error) {
	if v.CacheDir == "" {
		return nil, nil
	}
	c, err := runner.Open(v.CacheDir)
	if err != nil {
		return nil, err
	}
	if !v.Resume {
		c.Forget()
	}
	return c, nil
}

// EngineProfileSink returns the engine-telemetry aggregator selected by
// -profile-engine/-profile-engine-out, or nil when profiling is off. The
// returned profile is concurrency-safe, so charsweep shares one across all
// runs of a sweep.
func (v *Values) EngineProfileSink() *obs.EngineProfile {
	if !v.ProfileEngine && v.ProfileEngineOut == "" {
		return nil
	}
	return &obs.EngineProfile{}
}

// WriteEngineProfile renders the end-of-run engine report: the text table
// to stderr, and — when -profile-engine-out is set — the JSON form to that
// file.
func (v *Values) WriteEngineProfile(p *obs.EngineProfile) error {
	rep := p.Report()
	if err := rep.WriteText(os.Stderr); err != nil {
		return err
	}
	if v.ProfileEngineOut == "" {
		return nil
	}
	f, err := os.Create(v.ProfileEngineOut)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// PerRunPath makes an artifact path safe for a multi-run sweep: if the
// path has no "*" placeholder (which sim expands to a per-run stem), one
// is inserted before the extension so concurrent runs do not clobber each
// other. Empty paths pass through.
func PerRunPath(path string) string {
	if path == "" || strings.Contains(path, "*") {
		return path
	}
	if dot := strings.LastIndex(path, "."); dot > strings.LastIndex(path, "/") {
		return path[:dot] + "-*" + path[dot:]
	}
	return path + "-*"
}

// OpenMetricsSink creates the -metrics-out sink. The returned close
// function flushes and closes the file; both are nil when the flag is
// unset.
func (v *Values) OpenMetricsSink() (obs.RunSink, func() error, error) {
	if v.MetricsOut == "" {
		return nil, nil, nil
	}
	f, err := os.Create(v.MetricsOut)
	if err != nil {
		return nil, nil, err
	}
	sink, errf := obs.SinkFor(v.MetricsOut, f)
	closer := func() error {
		werr := errf()
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
	return sink, closer, nil
}
