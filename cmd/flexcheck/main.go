// Command flexcheck model-checks the deadlock detector: it enumerates every
// reachable state of tiny configurations (bounded-exhaustive, symmetry
// reduced), computes ground-truth message liveness by dynamic programming
// over the explored transition system, runs the REAL detection pipeline
// (network restore -> detect -> cwg knot analysis) on each state, and
// reports any soundness or completeness divergence with a minimized,
// replayable counterexample. With zero divergences (the expected outcome)
// it still emits one minimized true-deadlock exemplar per configuration
// that reaches one.
//
//	flexcheck -grid short -out results/flexcheck_short.json
//	flexcheck -grid full -repro-dir results/repros
//	flexcheck -topo ring-uni -k 3 -vcs 1 -routing dor -messages 3
//
// The exit status is 0 when the grid verifies, 1 on divergences, 2 on
// usage or checker errors. Repro files round-trip through cwgviz -repro.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"flexsim/internal/modelcheck"
)

func main() {
	grid := flag.String("grid", "short", "configuration grid: short, full, or custom (use -topo/-k/...)")
	topo := flag.String("topo", "ring-uni", "custom grid: topology (ring-uni, ring-bi, line)")
	k := flag.Int("k", 3, "custom grid: node count")
	vcs := flag.Int("vcs", 1, "custom grid: virtual channels per physical channel")
	routingName := flag.String("routing", "dor", "custom grid: routing relation")
	messages := flag.Int("messages", 3, "custom grid: message count")
	msgLen := flag.Int("msg-len", 2, "custom grid: flits per message")
	bufDepth := flag.Int("buf", 1, "custom grid: edge buffer depth (flits)")
	maxStates := flag.Int("max-states", 0, "per-configuration state cap (0 = default 150000)")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	reproDir := flag.String("repro-dir", "", "write divergence/exemplar repro files into this directory")
	quiet := flag.Bool("q", false, "suppress per-configuration progress lines")
	flag.Parse()

	var configs []modelcheck.Config
	switch *grid {
	case "short":
		configs = modelcheck.ShortGrid()
	case "full":
		configs = modelcheck.FullGrid()
	case "custom":
		configs = []modelcheck.Config{{
			Topology: *topo, K: *k, VCs: *vcs, Routing: *routingName,
			Messages: *messages, MsgLen: *msgLen, BufferDepth: *bufDepth,
		}}
	default:
		fmt.Fprintf(os.Stderr, "flexcheck: unknown grid %q (short|full|custom)\n", *grid)
		os.Exit(2)
	}

	var progress modelcheck.Progress
	if !*quiet {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := modelcheck.RunGrid(*grid, configs, modelcheck.Options{MaxStates: *maxStates}, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexcheck:", err)
		os.Exit(2)
	}

	if *reproDir != "" {
		if err := writeRepros(*reproDir, rep); err != nil {
			fmt.Fprintln(os.Stderr, "flexcheck:", err)
			os.Exit(2)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexcheck:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "flexcheck:", err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr,
		"flexcheck: %d configs, %d states, %d edges in %.1fs — %d soundness, %d completeness divergences\n",
		len(rep.Configs), rep.TotalStates, rep.TotalEdges, float64(rep.WallMS)/1000,
		rep.SoundnessDivergences, rep.CompletenessDivergences)
	if rep.SoundnessDivergences+rep.CompletenessDivergences > 0 {
		os.Exit(1)
	}
}

// writeRepros dumps every divergence counterexample and exemplar into dir.
func writeRepros(dir string, rep *modelcheck.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for _, c := range rep.Configs {
		for i, d := range c.Divergences {
			path := filepath.Join(dir, fmt.Sprintf("%s-%s-%d.json", c.Config.Name(), d.Kind, i))
			if err := d.Repro.WriteFile(path); err != nil {
				return err
			}
			n++
		}
		if c.Exemplar != nil {
			path := filepath.Join(dir, fmt.Sprintf("%s-exemplar.json", c.Config.Name()))
			if err := c.Exemplar.WriteFile(path); err != nil {
				return err
			}
			n++
		}
	}
	fmt.Fprintf(os.Stderr, "flexcheck: wrote %d repro files to %s\n", n, dir)
	return nil
}
