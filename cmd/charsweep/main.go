// Command charsweep regenerates the paper's evaluation figures as tables.
//
//	charsweep -experiment fig5            # full-fidelity Fig. 5 sweep
//	charsweep -experiment all -quick      # everything, scaled down
//	charsweep -experiment fig7 -csv       # CSV output
//	charsweep -experiment fig5 -quick -cpuprofile cpu.out
//
// Sweeps are long batch jobs, so execution is resilient: SIGINT/SIGTERM or
// -timeout cancels in-flight simulations within one detector period and
// exits cleanly with the tables completed so far, and -cache-dir persists
// every finished run so the next invocation (-resume, the default) skips
// straight past them:
//
//	charsweep -experiment all -cache-dir sweep.cache     # interrupt freely
//	charsweep -experiment all -cache-dir sweep.cache     # resumes, skipping done runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flexsim/cmd/internal/flags"
	"flexsim/internal/core"
	"flexsim/internal/experiments"
	"flexsim/internal/obs"
	"flexsim/internal/prof"
	"flexsim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	sweep := flags.BindSweep(flag.CommandLine)
	common := flags.BindCommon(flag.CommandLine)
	flag.Parse()

	ctx, cancel := flags.SignalContext(common.Timeout)
	defer cancel()

	stopProf, err := prof.Start(common.CPUProfile, common.MemProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
		}
	}()

	opts, err := sweep.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	opts.Context = ctx

	ids := []string{sweep.Experiment}
	if sweep.Experiment == "all" {
		ids = experiments.Names()
	}

	cache, err := common.OpenCache()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	if cache != nil {
		opts.Cache = cache
		fmt.Fprintf(os.Stderr, "charsweep: result cache %s (%d completed run(s) on disk)\n",
			cache.Dir(), cache.Len())
	}

	sink, sinkClose, err := common.OpenMetricsSink()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	if sink != nil {
		opts.MetricsSink = sink
		opts.MetricsEvery = common.MetricsEvery
	}
	opts.ForensicsDepth = common.ForensicsDepth
	opts.SpansPath = flags.PerRunPath(common.SpansOut)
	opts.HeatmapPath = flags.PerRunPath(common.HeatmapOut)
	engProf := common.EngineProfileSink()
	if engProf != nil {
		opts.ProfileEngine = true
		opts.EngineSink = engProf
	}
	var progress *obs.SweepProgress
	if common.HTTPAddr != "" {
		progress = obs.NewSweepProgress(ids)
		opts.OnPoint = func(p core.Point) {
			switch p.Status {
			case core.StatusCached:
				progress.RunCached()
			case core.StatusFailed:
				progress.RunFailed()
			case core.StatusCancelled:
				progress.RunCancelled()
			default:
				progress.RunDone()
			}
		}
		srv, err := obs.Serve(common.HTTPAddr, nil, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "charsweep: serving /progress on http://%s\n", srv.Addr())
	}

	interrupted := false
	for _, id := range ids {
		f, err := experiments.ByName(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		if ctx.Err() != nil {
			// The sweep was cancelled; mark the remaining experiments
			// rather than starting them.
			if progress != nil {
				progress.Cancel(id)
			}
			interrupted = true
			continue
		}
		start := time.Now()
		if progress != nil {
			progress.Start(id)
		}
		tables, err := f(opts)
		if err != nil {
			if ctx.Err() != nil {
				if progress != nil {
					progress.Cancel(id)
				}
				fmt.Fprintf(os.Stderr, "charsweep: %s interrupted after %v\n",
					id, time.Since(start).Round(time.Millisecond))
				interrupted = true
				continue
			}
			if progress != nil {
				progress.Fail(id)
			}
			fmt.Fprintf(os.Stderr, "charsweep: %s: %v\n", id, err)
			return 1
		}
		if progress != nil {
			progress.Finish(id, time.Since(start))
		}
		for _, t := range tables {
			if sweep.CSV {
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "charsweep:", err)
					return 1
				}
				fmt.Println()
				continue
			}
			if err := t.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "charsweep:", err)
				return 1
			}
			if sweep.Plot {
				if cols := t.NumericColumns(); len(cols) >= 2 {
					p, err := stats.PlotTable(t, cols[0], cols[1:], true)
					if err == nil {
						fmt.Println(p.Render())
					}
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "charsweep: cache: %d hits, %d misses (%d run(s) now on disk)\n",
			cache.Hits(), cache.Misses(), cache.Len())
		if err := cache.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
	}
	if engProf != nil {
		if err := common.WriteEngineProfile(engProf); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		if common.ProfileEngineOut != "" {
			fmt.Fprintf(os.Stderr, "charsweep: wrote engine profile to %s\n", common.ProfileEngineOut)
		}
	}
	if sinkClose != nil {
		if err := sinkClose(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
	}
	if interrupted {
		what := "re-run"
		if cache != nil {
			what = "re-run with -cache-dir " + cache.Dir()
		}
		fmt.Fprintf(os.Stderr, "charsweep: sweep interrupted; %s to resume from completed runs\n", what)
	}
	return 0
}
