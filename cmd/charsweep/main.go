// Command charsweep regenerates the paper's evaluation figures as tables.
//
//	charsweep -experiment fig5            # full-fidelity Fig. 5 sweep
//	charsweep -experiment all -quick      # everything, scaled down
//	charsweep -experiment fig7 -csv       # CSV output
//	charsweep -experiment fig5 -quick -cpuprofile cpu.out
//
// Sweeps are long batch jobs, so execution is resilient: SIGINT/SIGTERM or
// -timeout cancels in-flight simulations within one detector period and
// exits cleanly with the tables completed so far, and -cache-dir persists
// every finished run so the next invocation (-resume, the default) skips
// straight past them:
//
//	charsweep -experiment all -cache-dir sweep.cache     # interrupt freely
//	charsweep -experiment all -cache-dir sweep.cache     # resumes, skipping done runs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flexsim/cmd/internal/flags"
	"flexsim/internal/api/specv1"
	"flexsim/internal/core"
	"flexsim/internal/experiments"
	"flexsim/internal/obs"
	"flexsim/internal/prof"
	"flexsim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	sweep := flags.BindSweep(flag.CommandLine)
	common := flags.BindCommon(flag.CommandLine)
	flag.Parse()

	ctx, cancel := flags.SignalContext(common.Timeout)
	defer cancel()

	stopProf, err := prof.Start(common.CPUProfile, common.MemProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
		}
	}()

	opts, err := sweep.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	opts.Context = ctx

	ids := []string{sweep.Experiment}
	if sweep.Experiment == "all" {
		ids = experiments.Names()
	}
	if sweep.Spec != "" {
		ids = nil // the spec's own name labels /progress
	}

	cache, err := common.OpenCache()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	if cache != nil {
		opts.Cache = cache
		fmt.Fprintf(os.Stderr, "charsweep: result cache %s (%d completed run(s) on disk)\n",
			cache.Dir(), cache.Len())
	}

	sink, sinkClose, err := common.OpenMetricsSink()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	if sink != nil {
		opts.MetricsSink = sink
		opts.MetricsEvery = common.MetricsEvery
	}
	opts.ForensicsDepth = common.ForensicsDepth
	opts.SpansPath = flags.PerRunPath(common.SpansOut)
	opts.HeatmapPath = flags.PerRunPath(common.HeatmapOut)
	engProf := common.EngineProfileSink()
	if engProf != nil {
		opts.ProfileEngine = true
		opts.EngineSink = engProf
	}
	var progress *obs.SweepProgress
	if common.HTTPAddr != "" {
		progress = obs.NewSweepProgress(ids)
		opts.OnPoint = func(p core.Point) {
			switch p.Status {
			case core.StatusCached:
				progress.RunCached()
			case core.StatusFailed:
				progress.RunFailed()
			case core.StatusCancelled:
				progress.RunCancelled()
			default:
				progress.RunDone()
			}
		}
		srv, err := obs.Serve(common.HTTPAddr, obs.WithSweep(progress))
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "charsweep: serving /progress on http://%s\n", srv.Addr())
	}

	interrupted := false
	if sweep.Spec != "" {
		code := runSpecFile(ctx, sweep, cache, progress)
		if cache != nil {
			fmt.Fprintf(os.Stderr, "charsweep: cache: %d hits, %d misses (%d run(s) now on disk)\n",
				cache.Hits(), cache.Misses(), cache.Len())
			if err := cache.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "charsweep:", err)
				return 1
			}
		}
		if sinkClose != nil {
			if err := sinkClose(); err != nil {
				fmt.Fprintln(os.Stderr, "charsweep:", err)
				return 1
			}
		}
		return code
	}
	for _, id := range ids {
		f, err := experiments.ByName(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		if ctx.Err() != nil {
			// The sweep was cancelled; mark the remaining experiments
			// rather than starting them.
			if progress != nil {
				progress.Cancel(id)
			}
			interrupted = true
			continue
		}
		start := time.Now()
		if progress != nil {
			progress.Start(id)
		}
		tables, err := f(opts)
		if err != nil {
			if ctx.Err() != nil {
				if progress != nil {
					progress.Cancel(id)
				}
				fmt.Fprintf(os.Stderr, "charsweep: %s interrupted after %v\n",
					id, time.Since(start).Round(time.Millisecond))
				interrupted = true
				continue
			}
			if progress != nil {
				progress.Fail(id)
			}
			fmt.Fprintf(os.Stderr, "charsweep: %s: %v\n", id, err)
			return 1
		}
		if progress != nil {
			progress.Finish(id, time.Since(start))
		}
		for _, t := range tables {
			if sweep.CSV {
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "charsweep:", err)
					return 1
				}
				fmt.Println()
				continue
			}
			if err := t.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "charsweep:", err)
				return 1
			}
			if sweep.Plot {
				if cols := t.NumericColumns(); len(cols) >= 2 {
					p, err := stats.PlotTable(t, cols[0], cols[1:], true)
					if err == nil {
						fmt.Println(p.Render())
					}
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "charsweep: cache: %d hits, %d misses (%d run(s) now on disk)\n",
			cache.Hits(), cache.Misses(), cache.Len())
		if err := cache.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
	}
	if engProf != nil {
		if err := common.WriteEngineProfile(engProf); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		if common.ProfileEngineOut != "" {
			fmt.Fprintf(os.Stderr, "charsweep: wrote engine profile to %s\n", common.ProfileEngineOut)
		}
	}
	if sinkClose != nil {
		if err := sinkClose(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
	}
	if interrupted {
		what := "re-run"
		if cache != nil {
			what = "re-run with -cache-dir " + cache.Dir()
		}
		fmt.Fprintf(os.Stderr, "charsweep: sweep interrupted; %s to resume from completed runs\n", what)
	}
	return 0
}

// runSpecFile executes a specv1 sweep spec with the local runner and emits
// the sweep service's wire format (PointResult JSONL). With -cache-dir
// pointed at a sweep service's shared store, every point already completed
// there is served from it and the emitted result bytes are byte-identical
// to the service's results for the same spec.
func runSpecFile(ctx context.Context, sweep *flags.Sweep, cache *core.Cache, progress *obs.SweepProgress) int {
	in := io.Reader(os.Stdin)
	if sweep.Spec != "-" {
		f, err := os.Open(sweep.Spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	spec, err := specv1.DecodeSpec(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}

	copts := []core.Option{core.WithParallelism(sweep.Parallel)}
	if cache != nil {
		copts = append(copts, core.WithCache(cache))
	}
	if progress != nil {
		progress.Start(spec.Name)
		copts = append(copts, core.WithOnDone(func(_ int, p core.Point) {
			switch p.Status {
			case core.StatusCached:
				progress.RunCached()
			case core.StatusFailed:
				progress.RunFailed()
			case core.StatusCancelled:
				progress.RunCancelled()
			default:
				progress.RunDone()
			}
		}))
	}

	start := time.Now()
	pts, err := core.RunSpec(ctx, spec, copts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	configs, err := spec.Configs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	results, err := core.PointResults(configs, pts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	// Prefer the store's bytes for every settled point: decode/re-encode
	// drift can never creep into the byte-identity contract.
	if cache != nil {
		for i := range results {
			if len(results[i].Result) == 0 {
				continue
			}
			if raw, ok := cache.GetRaw(results[i].Key); ok {
				results[i].Result = raw
			}
		}
	}

	out := io.Writer(os.Stdout)
	if sweep.ResultsOut != "" {
		f, err := os.Create(sweep.ResultsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	if err := specv1.WriteResults(out, results); err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}

	var done, cached, failed, cancelled int
	for _, pr := range results {
		switch pr.Status {
		case specv1.StatusCached:
			cached++
		case specv1.StatusFailed:
			failed++
		case specv1.StatusCancelled:
			cancelled++
		default:
			done++
		}
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(os.Stderr, "charsweep: spec %s: %d point(s) — %d done, %d cached, %d failed, %d cancelled in %v\n",
		spec.Name, len(results), done, cached, failed, cancelled, elapsed)
	if progress != nil {
		switch {
		case cancelled > 0:
			progress.Cancel(spec.Name)
		case failed > 0:
			progress.Fail(spec.Name)
		default:
			progress.Finish(spec.Name, time.Since(start))
		}
	}
	if failed > 0 {
		return 1
	}
	if cancelled > 0 {
		fmt.Fprintf(os.Stderr, "charsweep: spec interrupted; re-run to resume from completed runs\n")
	}
	return 0
}
