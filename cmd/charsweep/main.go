// Command charsweep regenerates the paper's evaluation figures as tables.
//
//	charsweep -experiment fig5            # full-fidelity Fig. 5 sweep
//	charsweep -experiment all -quick      # everything, scaled down
//	charsweep -experiment fig7 -csv       # CSV output
//	charsweep -experiment fig5 -quick -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flexsim/internal/experiments"
	"flexsim/internal/obs"
	"flexsim/internal/prof"
	"flexsim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("experiment", "all",
		"experiment id ("+strings.Join(experiments.Names(), "|")+"|all)")
	quick := flag.Bool("quick", false, "scaled-down runs (8-ary 2-cube, short windows)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	plot := flag.Bool("plot", false, "render ASCII plots (first numeric column as x, log-y) after each table")
	par := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "seed offset (0 = default)")
	loads := flag.String("loads", "", "comma-separated load override, e.g. 0.2,0.6,1.0")
	metricsOut := flag.String("metrics-out", "", "write interval metrics for every run to this file (.jsonl/.json = JSONL, else CSV)")
	metricsEvery := flag.Int("metrics-every", obs.DefaultEvery, "interval metrics sampling period in cycles")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz and /progress on this address during the sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
		}
	}()

	opts := experiments.Options{Quick: *quick, Parallelism: *par, Seed: *seed}
	if *loads != "" {
		for _, f := range strings.Split(*loads, ",") {
			var l float64
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &l); err != nil {
				fmt.Fprintf(os.Stderr, "charsweep: bad load %q: %v\n", f, err)
				return 1
			}
			opts.Loads = append(opts.Loads, l)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}

	var metricsErr func() error
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		defer f.Close()
		opts.MetricsSink, metricsErr = obs.SinkFor(*metricsOut, f)
		opts.MetricsEvery = *metricsEvery
	}
	var progress *obs.SweepProgress
	if *httpAddr != "" {
		progress = obs.NewSweepProgress(ids)
		opts.OnRun = progress.RunDone
		srv, err := obs.Serve(*httpAddr, nil, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "charsweep: serving /progress on http://%s\n", srv.Addr())
	}

	for _, id := range ids {
		f, err := experiments.ByName(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		start := time.Now()
		if progress != nil {
			progress.Start(id)
		}
		tables, err := f(opts)
		if err != nil {
			if progress != nil {
				progress.Fail(id)
			}
			fmt.Fprintf(os.Stderr, "charsweep: %s: %v\n", id, err)
			return 1
		}
		if progress != nil {
			progress.Finish(id, time.Since(start))
		}
		for _, t := range tables {
			if *csv {
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "charsweep:", err)
					return 1
				}
				fmt.Println()
				continue
			}
			if err := t.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "charsweep:", err)
				return 1
			}
			if *plot {
				if cols := t.NumericColumns(); len(cols) >= 2 {
					p, err := stats.PlotTable(t, cols[0], cols[1:], true)
					if err == nil {
						fmt.Println(p.Render())
					}
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if metricsErr != nil {
		if err := metricsErr(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
	}
	return 0
}
