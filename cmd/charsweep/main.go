// Command charsweep regenerates the paper's evaluation figures as tables.
//
//	charsweep -experiment fig5            # full-fidelity Fig. 5 sweep
//	charsweep -experiment all -quick      # everything, scaled down
//	charsweep -experiment fig7 -csv       # CSV output
//	charsweep -experiment fig5 -quick -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flexsim/internal/experiments"
	"flexsim/internal/prof"
	"flexsim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("experiment", "all",
		"experiment id ("+strings.Join(experiments.Names(), "|")+"|all)")
	quick := flag.Bool("quick", false, "scaled-down runs (8-ary 2-cube, short windows)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	plot := flag.Bool("plot", false, "render ASCII plots (first numeric column as x, log-y) after each table")
	par := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "seed offset (0 = default)")
	loads := flag.String("loads", "", "comma-separated load override, e.g. 0.2,0.6,1.0")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charsweep:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
		}
	}()

	opts := experiments.Options{Quick: *quick, Parallelism: *par, Seed: *seed}
	if *loads != "" {
		for _, f := range strings.Split(*loads, ",") {
			var l float64
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &l); err != nil {
				fmt.Fprintf(os.Stderr, "charsweep: bad load %q: %v\n", f, err)
				return 1
			}
			opts.Loads = append(opts.Loads, l)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		f, err := experiments.ByName(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charsweep:", err)
			return 1
		}
		start := time.Now()
		tables, err := f(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "charsweep: %s: %v\n", id, err)
			return 1
		}
		for _, t := range tables {
			if *csv {
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "charsweep:", err)
					return 1
				}
				fmt.Println()
				continue
			}
			if err := t.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "charsweep:", err)
				return 1
			}
			if *plot {
				if cols := t.NumericColumns(); len(cols) >= 2 {
					p, err := stats.PlotTable(t, cols[0], cols[1:], true)
					if err == nil {
						fmt.Println(p.Render())
					}
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
