// Command flexsim runs one flit-level network simulation with true deadlock
// detection and prints the measured characterization.
//
// Example (the paper's default configuration at 60% load with DOR):
//
//	flexsim -k 16 -n 2 -routing dor -vcs 1 -load 0.6
//
// The run is resilient: SIGINT/SIGTERM or -timeout stops the cycle loop
// within one detector period and prints the partial characterization, and
// -cache-dir/-resume serve a previously completed identical configuration
// from the content-addressed result cache instead of re-running it. Pass
// -cpuprofile/-memprofile to capture pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"flexsim/cmd/internal/flags"
	"flexsim/internal/core"
	"flexsim/internal/obs"
	"flexsim/internal/prof"
	"flexsim/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	cfg := core.DefaultConfig()
	extras := flags.BindConfig(flag.CommandLine, &cfg)
	common := flags.BindCommon(flag.CommandLine)
	flag.Parse()
	extras.Apply(&cfg)
	if err := extras.LoadFaultSchedule(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		return 1
	}

	ctx, cancel := flags.SignalContext(common.Timeout)
	defer cancel()

	var tracers trace.Multi
	var ring *trace.Ring
	if extras.TraceLast > 0 {
		ring = &trace.Ring{Cap: extras.TraceLast}
		tracers = append(tracers, ring)
	}
	var incidents *obs.IncidentLog
	if extras.IncidentsOut != "" {
		if ring == nil {
			// Give post-mortems event context even without -trace-last.
			ring = &trace.Ring{Cap: 256}
			tracers = append(tracers, ring)
		}
		incidents = &obs.IncidentLog{LastEvents: ring}
		cfg.Incidents = incidents
		cfg.IncidentDOT = extras.IncidentsDOT
	}
	var jsonTrace *trace.JSONWriter
	if extras.TraceJSON != "" {
		f, err := os.Create(extras.TraceJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		defer f.Close()
		jsonTrace = &trace.JSONWriter{W: f}
		tracers = append(tracers, jsonTrace)
	}
	switch len(tracers) {
	case 0:
	case 1:
		cfg.Tracer = tracers[0]
	default:
		cfg.Tracer = tracers
	}
	var spansFile *os.File
	if common.SpansOut != "" {
		f, err := os.Create(common.SpansOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		spansFile = f
		cfg.Spans = trace.NewPerfetto(f)
	}
	var heatmap *obs.Heatmap
	if common.HeatmapOut != "" {
		heatmap = &obs.Heatmap{}
		cfg.Heatmap = heatmap
	}
	cfg.ForensicsDepth = common.ForensicsDepth
	engProf := common.EngineProfileSink()
	if engProf != nil {
		cfg.ProfileEngine = true
		cfg.EngineSink = engProf
	}

	sink, sinkClose, err := common.OpenMetricsSink()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		return 1
	}
	if sink != nil {
		cfg.MetricsSink = sink
		cfg.MetricsEvery = common.MetricsEvery
	}
	if common.HTTPAddr != "" {
		live := &obs.Live{}
		cfg.MetricsLive = live
		if cfg.MetricsEvery == 0 {
			cfg.MetricsEvery = common.MetricsEvery
		}
		srv, err := obs.Serve(common.HTTPAddr, obs.WithLive(live))
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "flexsim: serving /metrics on http://%s\n", srv.Addr())
	}

	stopProf, err := prof.Start(common.CPUProfile, common.MemProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
		}
	}()

	cache, err := common.OpenCache()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		return 1
	}

	// One engine for both paths: the single run goes through the same
	// resilient scheduler the sweeps use, so cancellation, panic isolation
	// and the result cache behave identically everywhere.
	var runOpts []core.Option
	if cache != nil {
		runOpts = append(runOpts, core.WithCache(cache))
	}
	p := core.RunAll(ctx, []core.Config{cfg}, runOpts...)[0]
	if cache != nil {
		if err := cache.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
		}
	}
	res := p.Result
	if res == nil {
		fmt.Fprintln(os.Stderr, "flexsim:", p.Err)
		return 1
	}
	switch {
	case p.Status == core.StatusCached:
		fmt.Fprintf(os.Stderr, "flexsim: result served from cache %s (key %s...)\n",
			cache.Dir(), core.CacheKey(cfg)[:12])
	case res.Interrupted:
		fmt.Fprintf(os.Stderr, "flexsim: interrupted — partial results over %d measured cycles\n",
			res.Cycles)
	}

	fmt.Printf("network:            %d-ary %d-cube, bidirectional=%v, %d VC(s), buffer=%d flits\n",
		cfg.K, cfg.N, cfg.Bidirectional, cfg.VCs, cfg.BufferDepth)
	fmt.Printf("routing/traffic:    %s / %s, %d-flit messages\n", cfg.Routing, cfg.Traffic, cfg.MsgLen)
	fmt.Printf("offered load:       %.3f (%.4f flits/node/cycle offered, %.4f delivered)\n",
		cfg.Load, res.OfferedRate(), res.Throughput())
	fmt.Printf("saturated:          %v\n", res.Saturated)
	fmt.Printf("delivered:          %d messages (%d via recovery), mean latency %.1f cycles\n",
		res.Delivered, res.Recovered, res.MeanLatency())
	fmt.Printf("latency tail:       p50 %d, p95 %d, p99 %d, max %d cycles\n",
		res.Latency.Quantile(0.50), res.Latency.Quantile(0.95),
		res.Latency.Quantile(0.99), res.Latency.Max())
	fmt.Printf("congestion:         mean %.1f active, %.1f blocked (%.1f%%), %.1f queued at sources\n",
		res.MeanActive, res.MeanBlocked, 100*res.BlockedFraction(), res.MeanQueued)
	fmt.Printf("deadlocks:          %d (%d single-cycle, %d multi-cycle), normalized %.6f per message\n",
		res.Deadlocks, res.SingleCycle, res.MultiCycle, res.NormalizedDeadlocks())
	if res.Invocations > 0 {
		fmt.Printf("detector:           %d passes (%.1f%% gated), build mean %.1f µs p99 %.1f µs, analyze mean %.1f µs\n",
			res.Invocations, 100*float64(res.GatedInvocations)/float64(res.Invocations),
			res.DetectBuildTime.Mean()/1e3, float64(res.DetectBuildTime.Quantile(0.99))/1e3,
			res.DetectAnalyzeTime.Mean()/1e3)
	}
	if res.Deadlocks > 0 {
		fmt.Printf("deadlock sets:      mean %.2f msgs (max %d); resource sets mean %.2f VCs (max %d)\n",
			res.MeanDeadlockSet(), res.MaxDeadlockSet, res.MeanResourceSet(), res.MaxResourceSet)
		fmt.Printf("knot cycle density: mean %.2f (max %d); dependent msgs mean %.2f per deadlock\n",
			res.MeanKnotCycles(), res.MaxKnotCycles, res.MeanDependent())
	}
	if res.FaultEvents > 0 || res.Killed > 0 {
		fmt.Printf("faults:             %d events applied, %d active at end; killed %d messages (%.2f%%), %d unroutable\n",
			res.FaultEvents, res.FaultsActiveEnd, res.Killed, 100*res.KilledFraction(), res.Unroutable)
	}
	if res.CensusSamples > 0 {
		capped := ""
		if res.CensusCapped {
			capped = " (capped)"
		}
		fmt.Printf("cycle census:       mean %.1f cycles per check, max %d%s\n",
			res.MeanCensusCycles(), res.MaxCycles, capped)
	}
	if ring != nil && extras.TraceLast > 0 {
		fmt.Printf("last %d of %d lifecycle events:\n", len(ring.Events()), ring.Total())
		for _, ev := range ring.Events() {
			fmt.Println(" ", ev)
		}
	}
	if incidents != nil {
		f, err := os.Create(extras.IncidentsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		werr := incidents.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "flexsim: wrote %d incident(s) to %s\n", incidents.Len(), extras.IncidentsOut)
	}
	if spansFile != nil {
		werr := cfg.Spans.Close()
		if cerr := spansFile.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "flexsim: wrote Perfetto trace to %s (load in ui.perfetto.dev)\n", common.SpansOut)
	}
	if heatmap != nil {
		f, err := os.Create(common.HeatmapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		werr := heatmap.WriteCSV(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "flexsim: wrote %d-VC heatmap to %s (%d samples)\n",
			heatmap.VCs(), common.HeatmapOut, heatmap.Samples())
	}
	if engProf != nil {
		if err := common.WriteEngineProfile(engProf); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		if common.ProfileEngineOut != "" {
			fmt.Fprintf(os.Stderr, "flexsim: wrote engine profile to %s\n", common.ProfileEngineOut)
		}
	}
	if sinkClose != nil {
		if err := sinkClose(); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
	}
	if jsonTrace != nil {
		if err := jsonTrace.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
	}
	return 0
}
