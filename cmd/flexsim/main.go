// Command flexsim runs one flit-level network simulation with true deadlock
// detection and prints the measured characterization.
//
// Example (the paper's default configuration at 60% load with DOR):
//
//	flexsim -k 16 -n 2 -routing dor -vcs 1 -load 0.6
//
// Pass -cpuprofile/-memprofile to capture pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"flexsim/internal/core"
	"flexsim/internal/obs"
	"flexsim/internal/prof"
	"flexsim/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	cfg := core.DefaultConfig()
	flag.IntVar(&cfg.K, "k", cfg.K, "radix (nodes per dimension)")
	flag.IntVar(&cfg.N, "n", cfg.N, "dimensions")
	uni := flag.Bool("uni", false, "unidirectional channels (default bidirectional)")
	flag.BoolVar(&cfg.Mesh, "mesh", false, "mesh (no wraparound links) instead of torus")
	flag.IntVar(&cfg.IrregularNodes, "irregular", 0, "random irregular switch network with this many nodes (0 = torus/mesh)")
	flag.IntVar(&cfg.IrregularLinks, "irregular-links", 0, "extra links beyond the irregular network's spanning tree")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.IntVar(&cfg.BufferDepth, "buf", cfg.BufferDepth, "edge buffer depth in flits")
	flag.IntVar(&cfg.MsgLen, "msglen", cfg.MsgLen, "message length in flits")
	flag.StringVar(&cfg.Routing, "routing", cfg.Routing, "routing algorithm (dor|tfar|dateline-dor|duato-far|misroute-far)")
	flag.StringVar(&cfg.Traffic, "traffic", cfg.Traffic, "traffic pattern (uniform|bitrev|transpose|shuffle|hotspot|tornado|neighbor)")
	flag.Float64Var(&cfg.HotspotFrac, "hotfrac", cfg.HotspotFrac, "hot-spot traffic fraction")
	flag.Float64Var(&cfg.Load, "load", cfg.Load, "normalized offered load (1.0 = capacity)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.IntVar(&cfg.WarmupCycles, "warmup", cfg.WarmupCycles, "warmup cycles")
	flag.IntVar(&cfg.MeasureCycles, "cycles", cfg.MeasureCycles, "measured cycles")
	flag.IntVar(&cfg.DetectEvery, "detect-every", cfg.DetectEvery, "deadlock detector period in cycles")
	flag.StringVar(&cfg.VictimPolicy, "victim", cfg.VictimPolicy, "recovery victim policy (oldest|most|fewest|random)")
	census := flag.Bool("census", false, "count resource dependency cycles each detector invocation")
	traceLast := flag.Int("trace-last", 0, "print the last N message lifecycle events after the run")
	flag.StringVar(&cfg.Workload, "workload", "", "program-driven workload instead of open-loop traffic (stencil|allreduce)")
	flag.IntVar(&cfg.WorkloadPhases, "phases", 0, "workload phases/rounds (default 10)")
	flag.IntVar(&cfg.ComputeDelay, "compute", 0, "compute cycles between workload phases")
	norecover := flag.Bool("no-recover", false, "detect but do not break deadlocks")
	check := flag.Bool("check", false, "enable per-cycle invariant checking (slow)")
	metricsOut := flag.String("metrics-out", "", "write interval metrics to this file (.jsonl/.json = JSONL, else CSV)")
	metricsEvery := flag.Int("metrics-every", obs.DefaultEvery, "interval metrics sampling period in cycles")
	incidentsOut := flag.String("incidents-out", "", "write per-deadlock incident post-mortems to this file as JSONL")
	incidentsDOT := flag.Bool("incidents-dot", false, "include a Graphviz knot-subgraph snapshot in each incident")
	traceJSON := flag.String("trace-json", "", "stream message lifecycle events to this file as JSONL")
	httpAddr := flag.String("http", "", "serve /metrics (Prometheus) and /healthz on this address during the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	cfg.Bidirectional = !*uni
	cfg.CycleCensus = *census
	cfg.Recover = !*norecover
	cfg.CheckInvariants = *check

	var tracers trace.Multi
	var ring *trace.Ring
	if *traceLast > 0 {
		ring = &trace.Ring{Cap: *traceLast}
		tracers = append(tracers, ring)
	}
	var incidents *obs.IncidentLog
	if *incidentsOut != "" {
		if ring == nil {
			// Give post-mortems event context even without -trace-last.
			ring = &trace.Ring{Cap: 256}
			tracers = append(tracers, ring)
		}
		incidents = &obs.IncidentLog{LastEvents: ring}
		cfg.Incidents = incidents
		cfg.IncidentDOT = *incidentsDOT
	}
	var jsonTrace *trace.JSONWriter
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		defer f.Close()
		jsonTrace = &trace.JSONWriter{W: f}
		tracers = append(tracers, jsonTrace)
	}
	switch len(tracers) {
	case 0:
	case 1:
		cfg.Tracer = tracers[0]
	default:
		cfg.Tracer = tracers
	}

	var metricsErr func() error
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		defer f.Close()
		cfg.MetricsSink, metricsErr = obs.SinkFor(*metricsOut, f)
		cfg.MetricsEvery = *metricsEvery
	}
	if *httpAddr != "" {
		live := &obs.Live{}
		cfg.MetricsLive = live
		if cfg.MetricsEvery == 0 {
			cfg.MetricsEvery = *metricsEvery
		}
		srv, err := obs.Serve(*httpAddr, live, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "flexsim: serving /metrics on http://%s\n", srv.Addr())
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
		}
	}()

	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		return 1
	}

	fmt.Printf("network:            %d-ary %d-cube, bidirectional=%v, %d VC(s), buffer=%d flits\n",
		cfg.K, cfg.N, cfg.Bidirectional, cfg.VCs, cfg.BufferDepth)
	fmt.Printf("routing/traffic:    %s / %s, %d-flit messages\n", cfg.Routing, cfg.Traffic, cfg.MsgLen)
	fmt.Printf("offered load:       %.3f (%.4f flits/node/cycle offered, %.4f delivered)\n",
		cfg.Load, res.OfferedRate(), res.Throughput())
	fmt.Printf("saturated:          %v\n", res.Saturated)
	fmt.Printf("delivered:          %d messages (%d via recovery), mean latency %.1f cycles\n",
		res.Delivered, res.Recovered, res.MeanLatency())
	fmt.Printf("latency tail:       p50 %d, p95 %d, p99 %d, max %d cycles\n",
		res.Latency.Quantile(0.50), res.Latency.Quantile(0.95),
		res.Latency.Quantile(0.99), res.Latency.Max())
	fmt.Printf("congestion:         mean %.1f active, %.1f blocked (%.1f%%), %.1f queued at sources\n",
		res.MeanActive, res.MeanBlocked, 100*res.BlockedFraction(), res.MeanQueued)
	fmt.Printf("deadlocks:          %d (%d single-cycle, %d multi-cycle), normalized %.6f per message\n",
		res.Deadlocks, res.SingleCycle, res.MultiCycle, res.NormalizedDeadlocks())
	if res.Invocations > 0 {
		fmt.Printf("detector:           %d passes (%.1f%% gated), build mean %.1f µs p99 %.1f µs, analyze mean %.1f µs\n",
			res.Invocations, 100*float64(res.GatedInvocations)/float64(res.Invocations),
			res.DetectBuildTime.Mean()/1e3, float64(res.DetectBuildTime.Quantile(0.99))/1e3,
			res.DetectAnalyzeTime.Mean()/1e3)
	}
	if res.Deadlocks > 0 {
		fmt.Printf("deadlock sets:      mean %.2f msgs (max %d); resource sets mean %.2f VCs (max %d)\n",
			res.MeanDeadlockSet(), res.MaxDeadlockSet, res.MeanResourceSet(), res.MaxResourceSet)
		fmt.Printf("knot cycle density: mean %.2f (max %d); dependent msgs mean %.2f per deadlock\n",
			res.MeanKnotCycles(), res.MaxKnotCycles, res.MeanDependent())
	}
	if res.CensusSamples > 0 {
		capped := ""
		if res.CensusCapped {
			capped = " (capped)"
		}
		fmt.Printf("cycle census:       mean %.1f cycles per check, max %d%s\n",
			res.MeanCensusCycles(), res.MaxCycles, capped)
	}
	if ring != nil && *traceLast > 0 {
		fmt.Printf("last %d of %d lifecycle events:\n", len(ring.Events()), ring.Total())
		for _, ev := range ring.Events() {
			fmt.Println(" ", ev)
		}
	}
	if incidents != nil {
		f, err := os.Create(*incidentsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
		werr := incidents.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "flexsim: wrote %d incident(s) to %s\n", incidents.Len(), *incidentsOut)
	}
	if metricsErr != nil {
		if err := metricsErr(); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
	}
	if jsonTrace != nil {
		if err := jsonTrace.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "flexsim:", err)
			return 1
		}
	}
	return 0
}
